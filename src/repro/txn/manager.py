"""MVCC-lite snapshot transactions over the append-only row store.

The storage engine (:mod:`repro.storage.table`) is append-only: rows are
never updated or deleted in place, and a row's rid is its position.
That makes multi-versioning cheap — a *snapshot* is just a commit epoch
plus, per table, the number of rows visible at that epoch, and the
per-table row-version list keyed by commit epoch is the monotone history
of those watermarks.  Readers pin a snapshot at statement (or
transaction) start and scan at most ``visible[table]`` rows / rids below
the watermark; writers stage rows into a private write-set that becomes
visible to others only when the commit installs it and bumps the epoch.

Commit protocol (first-committer-wins):

1. encode the WAL record and admit its buffer against the memory
   governor (*before* the epoch lock — admission may block on the
   governor condition, and waiting while holding a policy lock is a
   ``cc-wait-holding`` violation);
2. under ``_epoch_lock``: validate (any write-set table committed past
   this transaction's begin epoch -> retryable
   :class:`~repro.common.errors.TransactionConflict`), append + fsync
   the WAL record (the durability point), install the write-set
   (``rows.extend`` + index rebuild), advance the watermarks and the
   epoch;
3. after release: run the plan-cache invalidation callbacks once per
   commit (not per insert), publish ``txn.*`` metrics/trace events, and
   maybe fold the log into an atomic checkpoint.

Because installs happen entirely under the epoch lock and snapshots are
pinned under the same lock, a reader can never observe a half-installed
commit; because rids are positional and tables append-only, a stale
index probe can at worst return rids at or above the watermark, which
the snapshot filter drops.

Durability is optional: with a ``directory`` the manager opens the
crash-safe WAL + checkpoint layer (:mod:`repro.storage.wal`) and
recovery-on-open replays the committed suffix and discards torn tails;
without one, transactions are isolation-only (in-memory).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.common.errors import (
    CatalogError,
    SchemaError,
    TransactionConflict,
    TransactionError,
)
from repro.common.locking import maybe_witness
from repro.common.values import coerce
from repro.storage.table import PAGE_SIZE, Schema
from repro.storage.wal import (
    WalRecord,
    WriteAheadLog,
    recover,
    write_checkpoint,
)

__all__ = ["Snapshot", "Transaction", "TransactionManager"]

#: Transaction states.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass(frozen=True)
class Snapshot:
    """An immutable view: commit epoch + per-table visible row counts.

    A table absent from ``visible`` (created after the pin) is fully
    visible — DDL is unversioned, matching the engine's DDL story.
    """

    epoch: int
    visible: Mapping[str, int]

    def visible_rows(self, table_name: str) -> Optional[int]:
        """Row watermark for ``table_name``; ``None`` = no cap."""
        return self.visible.get(table_name)


@dataclass
class Transaction:
    """One writer/reader scope: pinned snapshot + private write-set."""

    txn_id: int
    snapshot: Snapshot
    state: str = ACTIVE
    #: table name -> staged (coerced) row tuples, in staging order.
    write_set: dict = field(default_factory=dict)

    @property
    def begin_epoch(self) -> int:
        return self.snapshot.epoch

    def staged_rows(self) -> int:
        return sum(len(rows) for rows in self.write_set.values())


class TransactionManager:
    """Epochs, snapshots, write-sets, and the commit critical section.

    One manager per :class:`~repro.core.database.Database`; thread-safe.
    ``governor_source`` is a zero-argument callable returning the current
    :class:`~repro.governor.MemoryGovernor` (or ``None``) so WAL and
    checkpoint buffers are charged against the shared budget whenever a
    governor is enabled, even one enabled after this manager.
    """

    def __init__(
        self,
        catalog,
        directory: Optional[str] = None,
        governor_source: Optional[Callable] = None,
        metrics=None,
        tracer=None,
        checkpoint_interval: int = 16,
        crash_hook=None,
    ):
        self.catalog = catalog
        self.directory = directory
        self.metrics = metrics
        self.tracer = tracer
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.crash_hook = crash_hook
        self._governor_source = governor_source
        # Rank 1 in the repo-wide order: inside the session layer,
        # outside every engine lock (see repro.common.locking).
        self._epoch_lock = maybe_witness(threading.Lock(), "txn.epoch")
        self._epoch = 0  # guarded-by: _epoch_lock
        self._next_txn_id = 0  # guarded-by: _epoch_lock
        self._visible: dict = {}  # guarded-by: _epoch_lock
        self._last_commit: dict = {}  # guarded-by: _epoch_lock
        self._active: set = set()  # guarded-by: _epoch_lock
        self._commits_since_checkpoint = 0  # guarded-by: _epoch_lock
        self._checkpointing = False  # guarded-by: _epoch_lock
        self.commits = 0
        self.rollbacks = 0
        self.conflicts = 0
        self.autocommits = 0
        self.recovered_records = 0
        self.recovered_truncated_bytes = 0
        self.checkpoints_written = 0
        #: Commit-coalesced cache/stats invalidation: each callback is
        #: invoked once per commit with the set of affected tables, after
        #: the epoch lock is released.
        self._invalidation_callbacks: list = []
        self._wal: Optional[WriteAheadLog] = None
        with self._epoch_lock:
            if directory is not None:
                self._recover_locked(directory)
            self._sync_visible_locked()
        if directory is not None:
            self._wal = WriteAheadLog(directory, crash_hook=self.crash_hook)
            # Checkpoint-at-open closes the DDL gap (table creation is not
            # WAL-logged): every table known at open — pre-loaded or
            # recovered — is captured, so later WAL records always land on
            # known tables.
            self.checkpoint()

    # ------------------------------------------------------------- durability

    def set_crash_hook(self, crash_hook) -> None:
        """Arm (or disarm, with ``None``) crash injection after open.

        The crash-chaos harness opens the database cleanly, then mounts
        its kill schedule — recovery-on-open and the checkpoint-at-open
        must never be the victims of the schedule they are recovering
        from.
        """
        self.crash_hook = crash_hook
        if self._wal is not None:
            self._wal.crash_hook = crash_hook

    def _recover_locked(self, directory: str) -> None:
        """Recovery-on-open: checkpoint + committed WAL suffix -> catalog."""
        state = recover(directory)
        self.recovered_truncated_bytes = state.truncated_bytes
        if state.checkpoint is not None:
            self._apply_checkpoint_locked(state.checkpoint)
            self._epoch = state.checkpoint["epoch"]
        touched = set()
        for record in state.records:
            for name, rows in record.writes.items():
                self.catalog.table(name).load_raw([tuple(r) for r in rows])
                self._last_commit[name] = record.epoch
                touched.add(name)
            self._epoch = max(self._epoch, record.epoch)
            self.recovered_records += 1
        for name in touched:
            self.catalog.rebuild_indexes(name)

    def _apply_checkpoint_locked(self, checkpoint: dict) -> None:
        for name, spec in checkpoint["tables"].items():
            try:
                table = self.catalog.table(name)
            except CatalogError:
                table = self.catalog.create_table(
                    name, Schema.of(*[tuple(c) for c in spec["columns"]])
                )
            table.rows[:] = [tuple(r) for r in spec["rows"]]
            self.catalog.rebuild_indexes(name)
            self._last_commit[name] = checkpoint["epoch"]

    def _sync_visible_locked(self) -> None:
        """Watermark every catalog table at its current row count."""
        for table in self.catalog.tables():
            self._visible[table.name] = len(table.rows)

    @property
    def durable(self) -> bool:
        return self._wal is not None

    @property
    def epoch(self) -> int:
        with self._epoch_lock:
            return self._epoch

    def active_count(self) -> int:
        with self._epoch_lock:
            return len(self._active)

    # ---------------------------------------------------------- invalidation

    def add_invalidation_callback(self, callback: Callable) -> None:
        """Register ``callback(tables)`` to run once per commit (outside
        the epoch lock).  Used by the database-wide and per-session plan
        caches so bulk loads invalidate at commit boundaries, not per
        insert."""
        if callback not in self._invalidation_callbacks:
            self._invalidation_callbacks.append(callback)

    def remove_invalidation_callback(self, callback: Callable) -> None:
        if callback in self._invalidation_callbacks:
            self._invalidation_callbacks.remove(callback)

    def _notify_invalidation(self, tables: set) -> None:
        for callback in list(self._invalidation_callbacks):
            callback(sorted(tables))

    # -------------------------------------------------------------- lifecycle

    def begin(self) -> Transaction:
        with self._epoch_lock:
            self._next_txn_id += 1
            txn = Transaction(
                txn_id=self._next_txn_id,
                snapshot=Snapshot(self._epoch, dict(self._visible)),
            )
            self._active.add(txn.txn_id)
        if self.metrics is not None:
            self.metrics.inc("txn.begins")
        return txn

    def pin_snapshot(self) -> Snapshot:
        """A fresh statement-level snapshot (autocommit reads)."""
        with self._epoch_lock:
            return Snapshot(self._epoch, dict(self._visible))

    def on_create_table(self, table) -> None:
        """DDL hook: watermark the new table and persist the schema."""
        with self._epoch_lock:
            self._visible[table.name] = len(table.rows)
        if self._wal is not None:
            self.checkpoint()

    # ---------------------------------------------------------------- staging

    def stage(self, txn: Transaction, table_name: str, rows, raw: bool = False) -> None:
        """Add rows to the transaction's private write-set.

        Values are coerced against the live schema immediately (``raw``
        skips coercion for pre-coerced bulk loads), so a bad row fails at
        staging time, not inside the commit critical section.
        """
        self._require_active(txn, "stage into")
        table = self.catalog.table(table_name)
        if raw:
            staged = [tuple(row) for row in rows]
        else:
            staged = []
            for values in rows:
                if len(values) != len(table.schema):
                    raise SchemaError(
                        f"{table_name}: expected {len(table.schema)} values, "
                        f"got {len(values)}"
                    )
                staged.append(
                    tuple(
                        coerce(v, col.dtype)
                        for v, col in zip(values, table.schema.columns)
                    )
                )
        txn.write_set.setdefault(table_name, []).extend(staged)

    @staticmethod
    def _require_active(txn: Transaction, verb: str) -> None:
        if txn.state != ACTIVE:
            raise TransactionError(
                f"cannot {verb} a {txn.state} transaction (txn {txn.txn_id})"
            )

    # ----------------------------------------------------------------- commit

    def commit(self, txn: Transaction) -> int:
        """First-committer-wins commit; returns the new epoch.

        Raises :class:`~repro.common.errors.TransactionConflict` (and
        aborts ``txn``) when another transaction committed to one of the
        write-set tables after ``txn`` began — the retryable signal to
        re-run against a fresh snapshot.
        """
        self._require_active(txn, "commit")
        if not txn.write_set:
            # Read-only: nothing to validate or install.
            txn.state = COMMITTED
            with self._epoch_lock:
                self._active.discard(txn.txn_id)
            self.commits += 1
            if self.metrics is not None:
                self.metrics.inc("txn.commits", **{"mode": "readonly"})
            return txn.begin_epoch
        writes = {name: list(rows) for name, rows in txn.write_set.items()}
        # Size the WAL buffer off-epoch (the real record differs only in
        # its epoch digits) and admit it before taking the epoch lock.
        provisional = WalRecord(txn.txn_id, 0, writes).encode()
        reservation = None
        governor = (
            self._governor_source() if self._governor_source is not None else None
        )
        if governor is not None:
            pages = max(1.0, len(provisional) / PAGE_SIZE)
            reservation = governor.admit(pages, label=f"txn.wal #{txn.txn_id}")
        wal_bytes = 0
        try:
            with self._epoch_lock:
                conflicted = tuple(
                    name
                    for name in writes
                    if self._last_commit.get(name, 0) > txn.begin_epoch
                )
                if conflicted:
                    self._active.discard(txn.txn_id)
                    txn.state = ABORTED
                    self.conflicts += 1
                    raise TransactionConflict(
                        "first-committer-wins conflict on "
                        f"{', '.join(conflicted)}: committed at epoch "
                        f"{max(self._last_commit[n] for n in conflicted)}, "
                        f"transaction began at epoch {txn.begin_epoch}",
                        tables=conflicted,
                        begin_epoch=txn.begin_epoch,
                        committed_epoch=max(
                            self._last_commit[n] for n in conflicted
                        ),
                    )
                epoch = self._epoch + 1
                if self._wal is not None:
                    # The durability point: fsync returns before install.
                    wal_bytes = self._wal.append_commit(
                        WalRecord(txn.txn_id, epoch, writes)
                    )
                self._install_locked(writes, epoch)
                self._epoch = epoch
                self._active.discard(txn.txn_id)
                self._commits_since_checkpoint += 1
                need_checkpoint = (
                    self._wal is not None
                    and not self._checkpointing
                    and self._commits_since_checkpoint
                    >= self.checkpoint_interval
                )
                if need_checkpoint:
                    self._checkpointing = True
                    self._commits_since_checkpoint = 0
        finally:
            if reservation is not None:
                governor.release(reservation)
        txn.state = COMMITTED
        txn.write_set = {}
        self.commits += 1
        affected = set(writes)
        self._notify_invalidation(affected)
        if self.metrics is not None:
            self.metrics.inc("txn.commits")
            self.metrics.set_gauge("txn.epoch", float(epoch))
            if wal_bytes:
                self.metrics.inc("txn.wal.records")
                self.metrics.inc("txn.wal.bytes", wal_bytes)
                self.metrics.inc("txn.wal.fsyncs")
        if self.tracer is not None:
            self.tracer.event(
                "txn.commit",
                txn=txn.txn_id,
                epoch=epoch,
                tables=sorted(affected),
                rows=sum(len(r) for r in writes.values()),
                wal_bytes=wal_bytes,
            )
        if need_checkpoint:
            self.checkpoint(_resume=True)
        return epoch

    def _install_locked(self, writes: dict, epoch: int) -> None:
        """Install a validated write-set (caller holds the epoch lock)."""
        for name, rows in writes.items():
            table = self.catalog.table(name)
            table.rows.extend(rows)
            self.catalog.rebuild_indexes(name)
            self._visible[name] = len(table.rows)
            self._last_commit[name] = epoch

    def autocommit(self, table_name: str, rows, raw: bool = False, retries: int = 8) -> int:
        """Run one insert as a single-statement transaction.

        A conflict here only means another append won the epoch race —
        re-staging against the fresh snapshot is always safe for
        append-only writes, so conflicts are retried internally.
        """
        rows = list(rows)
        last: Optional[TransactionConflict] = None
        for _ in range(max(1, retries)):
            txn = self.begin()
            self.stage(txn, table_name, rows, raw=raw)
            try:
                epoch = self.commit(txn)
            except TransactionConflict as exc:
                last = exc
                continue
            self.autocommits += 1
            return epoch
        raise last  # pragma: no cover - requires pathological contention

    # --------------------------------------------------------------- rollback

    def rollback(self, txn: Transaction) -> None:
        """Discard the write-set; nothing staged ever became visible."""
        if txn.state == ABORTED:
            return
        self._require_active(txn, "roll back")
        txn.state = ABORTED
        txn.write_set = {}
        with self._epoch_lock:
            self._active.discard(txn.txn_id)
        self.rollbacks += 1
        if self.metrics is not None:
            self.metrics.inc("txn.rollbacks")

    # ------------------------------------------------------------- checkpoint

    def checkpoint(self, _resume: bool = False) -> Optional[int]:
        """Fold the WAL into an atomic checkpoint; returns its epoch.

        The state is captured under the epoch lock (a consistent cut),
        written outside it (the slow part), and the WAL truncated only if
        no commit interleaved — otherwise the newer records stay and
        recovery's epoch filter skips the checkpointed prefix.
        """
        if self._wal is None:
            return None
        with self._epoch_lock:
            if not _resume and self._checkpointing:
                return None
            self._checkpointing = True
            state = self._capture_state_locked()
        governor = (
            self._governor_source() if self._governor_source is not None else None
        )
        reservation = None
        if governor is not None:
            pages = max(
                1.0,
                sum(
                    len(spec["rows"]) * self.catalog.table(name).schema.row_width
                    for name, spec in state["tables"].items()
                )
                / PAGE_SIZE,
            )
            reservation = governor.admit(pages, label="txn.checkpoint")
        try:
            write_checkpoint(self.directory, state, crash_hook=self.crash_hook)
        finally:
            if reservation is not None:
                governor.release(reservation)
            with self._epoch_lock:
                self._checkpointing = False
        with self._epoch_lock:
            if self._epoch == state["epoch"]:
                self._wal.reset()
        self.checkpoints_written += 1
        if self.metrics is not None:
            self.metrics.inc("txn.checkpoints")
        if self.tracer is not None:
            self.tracer.event("txn.checkpoint", epoch=state["epoch"])
        return state["epoch"]

    def _capture_state_locked(self) -> dict:
        return {
            "epoch": self._epoch,
            "tables": {
                table.name: {
                    "columns": [
                        [c.name, c.dtype.value] for c in table.schema
                    ],
                    "rows": [list(r) for r in table.rows],
                }
                for table in self.catalog.tables()
            },
        }

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def snapshot_stats(self) -> dict:
        """Point-in-time counters for the CLI and tests."""
        with self._epoch_lock:
            epoch = self._epoch
            active = len(self._active)
        wal = self._wal
        return {
            "epoch": epoch,
            "active": active,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "conflicts": self.conflicts,
            "autocommits": self.autocommits,
            "durable": wal is not None,
            "wal_records": wal.records_appended if wal is not None else 0,
            "wal_bytes": wal.bytes_appended if wal is not None else 0,
            "checkpoints": self.checkpoints_written,
            "recovered_records": self.recovered_records,
            "recovered_truncated_bytes": self.recovered_truncated_bytes,
        }
