"""Checkpoint flavors and their risk/opportunity metadata (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

#: The five flavors of CHECK from paper §3.
LC = "LC"
LCEM = "LCEM"
ECB = "ECB"
ECWC = "ECWC"
ECDC = "ECDC"

ALL_FLAVORS = (LC, LCEM, ECB, ECWC, ECDC)

#: The paper's default: conservative flavors only (§4).
DEFAULT_FLAVORS = frozenset({LC, LCEM})

#: Flavors that are only safe in non-pipelined positions (no compensation).
NON_PIPELINED_FLAVORS = frozenset({LC, LCEM, ECWC})


@dataclass(frozen=True)
class FlavorInfo:
    """One row of the paper's Table 1."""

    name: str
    placement: str
    risk: str
    opportunity: str
    pipelined_safe: bool  #: usable when rows may already have been returned


TABLE1: dict[str, FlavorInfo] = {
    LC: FlavorInfo(
        LC,
        placement="CHECK above materialization points",
        risk="Very low -- only context switching",
        opportunity="Low, only at materialization points",
        pipelined_safe=False,
    ),
    LCEM: FlavorInfo(
        LCEM,
        placement="CHECK-materialization pairs on outer of NLJN",
        risk="Context switching + materialization overhead",
        opportunity="Materialization points and NLJN outers",
        pipelined_safe=False,
    ),
    ECB: FlavorInfo(
        ECB,
        placement="BUFCHECK on outer of NLJN",
        risk="High -- exact cardinality of subplan below ECB not available",
        opportunity="Can reoptimize anytime during materialization",
        pipelined_safe=True,
    ),
    ECWC: FlavorInfo(
        ECWC,
        placement="CHECK below materialization points",
        risk="High -- may throw away arbitrary amount of work during reoptimization",
        opportunity="Anywhere below a materialization point",
        pipelined_safe=False,
    ),
    ECDC: FlavorInfo(
        ECDC,
        placement="CHECK and INSERT before reoptimization; anti-join afterwards",
        risk="High -- may throw away arbitrary amount of work during reoptimization",
        opportunity="Anywhere in the plan of an SPJ-query",
        pipelined_safe=True,
    ),
}
