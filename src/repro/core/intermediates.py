"""Harvesting partial-execution state after a CHECK fires (paper §2.1/§2.3).

Two things are collected from the interrupted operator tree:

1. **Cardinality feedback** — exact counts for every operator that reached
   end-of-stream (or completed a materialization build), and lower bounds
   for operators interrupted mid-stream, keyed by edge signature.
2. **Temp MVs** — every completed SORT/TEMP materialization is promoted to a
   temporary materialized view with its exact cardinality as its catalog
   statistic, so re-optimization can *choose* to reuse it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PopConfig
from repro.core.feedback import CardinalityFeedback
from repro.executor.base import ExecutionContext, Operator, ReoptimizationSignal
from repro.executor.scans import IndexScanExec
from repro.plan.physical import (
    AntiJoin,
    Distinct,
    GroupBy,
    Project,
    Return,
    Sort,
)
from repro.storage.catalog import Catalog

#: Operators whose output cardinality does not equal their edge-signature
#: cardinality (aggregation collapses rows; Return may be LIMIT-cut; ...).
_EXCLUDED_FROM_FEEDBACK = (GroupBy, Distinct, Project, Return, AntiJoin)


def _feedback_eligible(op: Operator) -> bool:
    if isinstance(op.plan, _EXCLUDED_FROM_FEEDBACK):
        return False
    if isinstance(op, IndexScanExec) and op.plan.correlation is not None:
        # A correlated inner's total match count is not the cardinality of
        # any relational edge.
        return False
    return True


def harvest_execution_state(
    ctx: ExecutionContext,
    signal: Optional[ReoptimizationSignal],
    feedback: CardinalityFeedback,
    catalog: Catalog,
    config: PopConfig,
) -> list[str]:
    """Record feedback and promote intermediates; returns new MV names."""
    registered: list[str] = []
    existing = {
        (mv.tables, mv.predicate_ids): mv.cardinality for mv in catalog.temp_mvs()
    }
    for op in ctx.operators:
        if not _feedback_eligible(op):
            continue
        signature = op.plan.properties.signature
        materialized = op.materialized_rows
        if materialized is not None:
            feedback.record(signature, len(materialized), exact=True)
            if config.reuse_policy != "never":
                key = (op.plan.properties.tables, op.plan.properties.predicates)
                if existing.get(key, -1) < len(materialized):
                    order = op.plan.keys if isinstance(op.plan, Sort) else ()
                    mv = catalog.register_temp_mv(
                        tables=op.plan.properties.tables,
                        predicate_ids=op.plan.properties.predicates,
                        columns=tuple(op.plan.layout.columns),
                        rows=materialized,
                        order=tuple(order),
                    )
                    existing[key] = mv.cardinality
                    registered.append(mv.name)
        elif op.eof_seen:
            feedback.record(signature, op.rows_out, exact=True)
        elif op.rows_out > 0:
            feedback.record(signature, op.rows_out, exact=False)

    if signal is not None:
        feedback.record(
            signal.check_op.properties.signature,
            signal.observed,
            exact=signal.complete,
        )
    return registered
