"""Cross-query cardinality learning (paper §7, "Learning for the Future").

The paper notes POP only helps the statement currently executing and
proposes combining it with LEO-style learning [SLM+01]: cardinalities
observed at runtime should also correct *future* statements.  This module
implements that extension: a :class:`LearnedCardinalities` store owned by
the :class:`~repro.core.database.Database` accumulates exact observations
across statements, and the POP driver seeds each statement's feedback from
it.

Safety rule: only edges whose predicates are fully literal are learned.  A
parameter marker's ``pred_id`` is bind-value-independent, so persisting its
observed cardinality would leak one bind's cardinality into executions with
different bind values.
"""

from __future__ import annotations

from repro.core.feedback import CardinalityFeedback, EdgeSignature


def _signature_has_marker(signature: EdgeSignature) -> bool:
    """True when any predicate id in the edge signature contains a marker."""
    _, predicate_ids = signature
    return any("?" in pred_id for pred_id in predicate_ids)


class LearnedCardinalities:
    """A persistent, marker-safe cardinality store shared across statements."""

    def __init__(self) -> None:
        self._store = CardinalityFeedback()
        self.statements_learned_from = 0

    def __len__(self) -> int:
        return len(self._store)

    def seed(self) -> CardinalityFeedback:
        """A fresh per-statement feedback store pre-loaded with learned facts."""
        feedback = CardinalityFeedback()
        for signature, entry in self._store.snapshot().items():
            feedback.record(signature, entry.cardinality, entry.exact)
        return feedback

    def absorb(self, feedback: CardinalityFeedback) -> int:
        """Learn the exact, marker-free observations of one statement.

        Returns how many edges were learned.
        """
        learned = 0
        for signature, entry in feedback.snapshot().items():
            if not entry.exact:
                continue  # lower bounds are bind-specific runtime facts
            if _signature_has_marker(signature):
                continue
            self._store.record(signature, entry.cardinality, exact=True)
            learned += 1
        if learned:
            self.statements_learned_from += 1
        return learned

    def forget(self) -> None:
        """Drop everything (e.g. after a bulk load invalidates old counts)."""
        self._store.clear()
        self.statements_learned_from = 0
