"""POP configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.flavors import DEFAULT_FLAVORS


@dataclass
class PopConfig:
    """Controls progressive optimization for one statement.

    The defaults mirror the paper's prototype defaults (§4): only the
    conservative LC and LCEM flavors are placed; eager flavors are opt-in;
    re-optimization is capped at three rounds; checkpoints are skipped for
    cheap queries and for edges with no plan alternative.
    """

    enabled: bool = True
    #: Which checkpoint flavors the placement pass may use.
    flavors: frozenset = DEFAULT_FLAVORS
    #: Termination heuristic (§7): at most this many re-optimizations.
    max_reoptimizations: int = 3
    #: Queries with estimated cost below this get no checkpoints (§4).
    min_cost_for_checkpoints: float = 25.0
    #: Only place a CHECK when its validity range was actually narrowed,
    #: i.e. an alternative plan exists above the checkpoint (§4).
    require_alternatives: bool = True
    #: Cap on ECB's valve buffer.
    ecb_buffer_cap: int = 100_000
    #: Intermediate-result reuse policy: "cost" (paper: optimizer decides),
    #: "never", or "always" (ablation modes).
    reuse_policy: str = "cost"
    #: When set, replaces validity-range check ranges with the ad hoc
    #: interval [est/K, est*K] (the KD98-style threshold the paper argues
    #: against; used by the ablation bench).
    adhoc_threshold_factor: Optional[float] = None
    #: Log checkpoint evaluations without ever triggering (Fig. 14 mode).
    dry_run: bool = False
    #: Checkpoint op_ids that trigger even inside their range (Fig. 12's
    #: "dummy re-optimization"), applied to the first execution attempt.
    force_trigger_op_ids: frozenset = frozenset()
    #: Propagate cardinality feedback between attempts (ablation switch).
    use_feedback: bool = True
    #: §7 extension — trigger re-optimization when cumulative work exceeds
    #: this budget (in work units), not just on cardinality violations.
    #: The budget escalates per attempt to guarantee progress.
    work_budget: Optional[float] = None
    #: §7 extension — derive the re-optimization limit from query complexity
    #: (joins and parameter markers) instead of the fixed cap.
    adaptive_reopt_limit: bool = False
    #: Strict analysis: run the plan-semantics linter (:mod:`repro.analysis`)
    #: on every plan the driver is about to execute — including re-optimized
    #: plans, where feedback consistency is also audited — and fail the
    #: statement on error-severity findings.
    strict_analysis: bool = False

    def reopt_limit_for(self, query) -> int:
        """The effective re-optimization cap for ``query``."""
        if not self.adaptive_reopt_limit:
            return self.max_reoptimizations
        joins = len(query.join_predicates)
        markers = len(query.parameter_names())
        return max(1, min(5, 1 + joins // 2 + markers))

    def __post_init__(self) -> None:
        if self.reuse_policy not in ("cost", "never", "always"):
            raise ValueError(f"unknown reuse policy {self.reuse_policy!r}")
        self.flavors = frozenset(self.flavors)


#: A disabled-POP configuration (the paper's "without POP" baseline).
NO_POP = PopConfig(enabled=False)
