"""POP configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.flavors import DEFAULT_FLAVORS


def _default_batch_size() -> int:
    """Batch size from the ``REPRO_BATCH_SIZE`` environment variable.

    ``0`` (the default) keeps the classic row-at-a-time executor; any
    positive value turns on the vectorized batch drain for every statement
    whose :class:`PopConfig` does not set ``batch_size`` explicitly.  The
    env route exists so whole harnesses (chaos, server smoke, CI jobs) can
    flip execution mode without threading a parameter through every
    config-construction site.
    """
    raw = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BATCH_SIZE must be an integer, got {raw!r}"
        ) from exc
    return value


@dataclass
class ResiliencePolicy:
    """Knobs of the execution guard (:mod:`repro.resilience`).

    Attached to :class:`PopConfig` (``resilience=...``), the guard wraps
    every execution attempt: transient failures are retried with capped
    exponential backoff (charged to the work meter, so retries are visible
    in the same cost currency as everything else), a circuit breaker
    detects re-optimization thrash and runaway attempt counts, and — once
    tripped — the statement completes on a conservative POP-disabled
    safe plan that cannot signal re-optimization.
    """

    #: Transient failures retried per statement before the breaker trips.
    max_retries: int = 2
    #: Backoff charged to the meter before retry ``k`` is
    #: ``min(cap, base * factor**k)`` work units.
    backoff_base_units: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_units: float = 800.0
    #: Per-attempt work-unit deadline; ``None`` disables the deadline.
    #: Exceeding it raises :class:`~repro.common.errors.ExecutionTimeout`,
    #: which goes straight to the safe-plan fallback (no retry).
    deadline_units: Optional[float] = None
    #: Per-*statement* wall-clock deadline in seconds; ``None`` disables
    #: it.  Complements ``deadline_units``: the work-unit clock cannot see
    #: real time lost to a stalled operator (a blocked socket, a slow
    #: disk), so the wall deadline is the server's tail-latency backstop.
    #: Statement-scoped — retries do not extend it — and, like the
    #: work-unit deadline, never applied to the safe-plan fallback (which
    #: must be guaranteed to complete).  Exceeding it raises
    #: :class:`~repro.common.errors.ExecutionTimeout`.
    deadline_seconds: Optional[float] = None
    #: Breaker: trip when the same join order ends in a re-optimization
    #: signal this many times (thrash), ...
    breaker_same_plan_limit: int = 3
    #: ... or when one statement accumulates this many execution attempts
    #: (optimize+execute rounds, retries included).
    breaker_attempt_limit: int = 8
    #: When the breaker trips (or retries are exhausted), fall back to the
    #: safe plan instead of raising.  Disable to surface the failure.
    fallback_enabled: bool = True

    def backoff_units(self, retry_index: int) -> float:
        """Backoff charge before retry number ``retry_index`` (0-based)."""
        return min(
            self.backoff_cap_units,
            self.backoff_base_units * self.backoff_factor**retry_index,
        )


@dataclass
class MemoryPolicy:
    """Memory-governor policy (:mod:`repro.governor`).

    Attached to :class:`PopConfig` (``memory=...``) and activated by
    :meth:`repro.core.database.Database.enable_memory_governor`.  When
    absent (the default) the engine keeps its legacy behavior: every
    operator gets its full modeled grant and a squeeze below the minimum
    raises :class:`~repro.common.errors.ResourceExhausted`.

    With a policy in place the degradation ladder replaces the hard
    failure: operators whose footprint exceeds their grant *spill* to
    disk (external-merge sort, Grace-partitioned hash join, file-backed
    TEMP) before the guard ever considers robust flavors or the safe
    plan.
    """

    #: Shared page budget owned by the governor; all concurrently running
    #: statements' reservations must fit inside it.
    budget_pages: float = 512.0
    #: Floor of any admission reservation: even a statement whose plan
    #: needs less reserves this much (and renegotiation never shrinks a
    #: running reservation below it).
    min_reservation_pages: float = 16.0
    #: Statements allowed to wait for pages when the budget is saturated;
    #: beyond this depth admission sheds with
    #: :class:`~repro.common.errors.AdmissionRejected`.
    max_queue_depth: int = 8
    #: Wall-clock cap on one statement's admission wait.
    queue_timeout_seconds: float = 30.0
    #: Master switch for operator spilling; disabling it restores the
    #: legacy raise-on-squeeze behavior while keeping admission control.
    spill_enabled: bool = True
    #: Minimum per-operator working grant: a squeezed operator always
    #: keeps this many pages in memory and spills the rest.
    min_grant_pages: float = 8.0
    #: Fan-out of one Grace hash-join partitioning pass.
    spill_partitions: int = 8
    #: Recursive re-partitioning depth cap; a partition still too big at
    #: this depth falls back to block nested-loop within the partition.
    max_recursion_depth: int = 3

    def __post_init__(self) -> None:
        if self.budget_pages <= 0:
            raise ValueError("budget_pages must be positive")
        if self.min_reservation_pages <= 0:
            raise ValueError("min_reservation_pages must be positive")
        if self.min_grant_pages <= 0:
            raise ValueError("min_grant_pages must be positive")
        if self.spill_partitions < 2:
            raise ValueError("spill_partitions must be at least 2")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.max_recursion_depth < 0:
            raise ValueError("max_recursion_depth must be non-negative")


@dataclass
class PopConfig:
    """Controls progressive optimization for one statement.

    The defaults mirror the paper's prototype defaults (§4): only the
    conservative LC and LCEM flavors are placed; eager flavors are opt-in;
    re-optimization is capped at three rounds; checkpoints are skipped for
    cheap queries and for edges with no plan alternative.
    """

    enabled: bool = True
    #: Which checkpoint flavors the placement pass may use.
    flavors: frozenset = DEFAULT_FLAVORS
    #: Termination heuristic (§7): at most this many re-optimizations.
    max_reoptimizations: int = 3
    #: Queries with estimated cost below this get no checkpoints (§4).
    min_cost_for_checkpoints: float = 25.0
    #: Only place a CHECK when its validity range was actually narrowed,
    #: i.e. an alternative plan exists above the checkpoint (§4).
    require_alternatives: bool = True
    #: Cap on ECB's valve buffer.
    ecb_buffer_cap: int = 100_000
    #: Intermediate-result reuse policy: "cost" (paper: optimizer decides),
    #: "never", or "always" (ablation modes).
    reuse_policy: str = "cost"
    #: When set, replaces validity-range check ranges with the ad hoc
    #: interval [est/K, est*K] (the KD98-style threshold the paper argues
    #: against; used by the ablation bench).
    adhoc_threshold_factor: Optional[float] = None
    #: Log checkpoint evaluations without ever triggering (Fig. 14 mode).
    dry_run: bool = False
    #: Checkpoint op_ids that trigger even inside their range (Fig. 12's
    #: "dummy re-optimization"), applied to the first execution attempt.
    force_trigger_op_ids: frozenset = frozenset()
    #: Propagate cardinality feedback between attempts (ablation switch).
    use_feedback: bool = True
    #: Allow the validity-range-aware plan cache (:mod:`repro.cache`) to
    #: serve this statement, when the database has one enabled.  Ablation
    #: modes that change plan semantics disable caching regardless (see
    #: :func:`repro.cache.cache_usable`).
    plan_cache: bool = True
    #: §7 extension — trigger re-optimization when cumulative work exceeds
    #: this budget (in work units), not just on cardinality violations.
    #: The budget escalates per attempt to guarantee progress.
    work_budget: Optional[float] = None
    #: §7 extension — derive the re-optimization limit from query complexity
    #: (joins and parameter markers) instead of the fixed cap.
    adaptive_reopt_limit: bool = False
    #: Strict analysis: run the plan-semantics linter (:mod:`repro.analysis`)
    #: on every plan the driver is about to execute — including re-optimized
    #: plans, where feedback consistency is also audited — and fail the
    #: statement on error-severity findings.
    strict_analysis: bool = False
    #: Execution-guard policy (:mod:`repro.resilience`): retry/backoff for
    #: transient failures, work-unit deadline, circuit breaker, safe-plan
    #: fallback.  ``None`` disables the guard entirely (the default — no
    #: behavior change and zero overhead).
    resilience: Optional[ResiliencePolicy] = None
    #: Memory-governor policy (:mod:`repro.governor`): admission control
    #: against a shared page budget, per-operator grant arbitration, and
    #: spill-based degradation.  ``None`` disables the governor (the
    #: default — legacy full grants, hard ``ResourceExhausted`` failures).
    memory: Optional[MemoryPolicy] = None
    #: Rows per executor batch.  ``0`` = classic row-at-a-time iteration;
    #: any positive value drives the plan through the vectorized
    #: ``next_batch`` path (docs/vectorized.md).  Semantics are identical
    #: in both modes — rows, CHECK decisions, re-opt counts, and meter
    #: totals match the row engine exactly — only cancellation/deadline
    #: poll granularity moves to batch boundaries.  Defaults from the
    #: ``REPRO_BATCH_SIZE`` environment variable.
    batch_size: int = field(default_factory=_default_batch_size)

    def reopt_limit_for(self, query) -> int:
        """The effective re-optimization cap for ``query``."""
        if not self.adaptive_reopt_limit:
            return self.max_reoptimizations
        joins = len(query.join_predicates)
        markers = len(query.parameter_names())
        return max(1, min(5, 1 + joins // 2 + markers))

    def __post_init__(self) -> None:
        if self.reuse_policy not in ("cost", "never", "always"):
            raise ValueError(f"unknown reuse policy {self.reuse_policy!r}")
        if self.batch_size < 0:
            raise ValueError("batch_size must be non-negative (0 = row mode)")
        self.flavors = frozenset(self.flavors)


#: A disabled-POP configuration (the paper's "without POP" baseline).
NO_POP = PopConfig(enabled=False)
