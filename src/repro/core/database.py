"""The public `Database` facade — the library's main entry point.

Typical use::

    from repro import Database, PopConfig

    db = Database()
    db.create_table("t", [("id", "int"), ("v", "str")])
    db.insert("t", [(1, "a"), (2, "b")])
    db.create_index("t_id", "t", "id")
    db.runstats()
    result = db.execute("SELECT t.v FROM t WHERE t.id = 1")
    print(result.rows)

``execute`` accepts SQL text or a :class:`repro.plan.logical.Query`, bind
parameters for ``?`` markers, and a :class:`PopConfig` controlling
progressive optimization (enabled with conservative defaults unless told
otherwise).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence

from repro.cache import cache_usable
from repro.core.config import NO_POP, MemoryPolicy, PopConfig
from repro.core.driver import PopDriver, PopReport
from repro.sql.parameterize import parameterize_sql
from repro.core.learning import LearnedCardinalities
from repro.executor.meter import WorkMeter
from repro.optimizer.costmodel import DEFAULT_COST_PARAMS, CostParams
from repro.optimizer.enumeration import OptimizerOptions
from repro.optimizer.optimizer import Optimizer
from repro.plan.explain import explain_plan
from repro.plan.logical import Query
from repro.stats.collect import runstats as collect_runstats
from repro.stats.selectivity import SelectivityEstimator
from repro.storage.catalog import Catalog
from repro.storage.table import Schema


@dataclass
class Result:
    """Rows plus the execution report of one statement."""

    columns: list
    rows: list
    report: PopReport

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Database:
    """An in-memory database with a POP-enabled query processor."""

    def __init__(
        self,
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        optimizer_options: Optional[OptimizerOptions] = None,
        selectivity: Optional[SelectivityEstimator] = None,
    ):
        self.catalog = Catalog()
        self.cost_params = cost_params
        self.optimizer = Optimizer(
            self.catalog,
            cost_params=cost_params,
            options=optimizer_options,
            selectivity=selectivity,
        )
        #: §7 "Learning for the Future": when enabled, exact cardinalities
        #: observed at runtime correct the estimates of *future* statements.
        self.learning: Optional[LearnedCardinalities] = None
        #: Validity-range-aware plan cache (:mod:`repro.cache`); off until
        #: :meth:`enable_plan_cache`.
        self.plan_cache = None
        #: Per-database memory governor (:mod:`repro.governor`); off until
        #: :meth:`enable_memory_governor`.
        self.memory_governor = None
        #: Snapshot-transaction manager (:mod:`repro.txn`); off until
        #: :meth:`enable_transactions`.  When off, writes apply immediately
        #: and reads see latest data — the pre-transactional behavior.
        self.txn_manager = None
        #: Per-thread implicit transaction (:meth:`begin` / :meth:`commit` /
        #: :meth:`rollback`); explicit handles via :meth:`begin_txn`.
        self._txn_local = threading.local()

    def enable_learning(self) -> "LearnedCardinalities":
        """Turn on cross-statement cardinality learning (LEO-style)."""
        if self.learning is None:
            self.learning = LearnedCardinalities()
        return self.learning

    def disable_learning(self) -> None:
        self.learning = None

    def enable_plan_cache(
        self, capacity: int = 64, variants_per_shape: int = 4
    ):
        """Turn on the validity-range-aware plan cache for SQL statements.

        Statements are normalized (literals lifted to parameters) and keyed
        on shape; a cached plan is reused only when its validity ranges
        contain fresh cardinality estimates for the new parameter values,
        in which case optimization is skipped entirely.
        """
        from repro.cache import PlanCache, PlanCacheConfig

        if self.plan_cache is None:
            self.plan_cache = PlanCache(
                PlanCacheConfig(
                    capacity=capacity, variants_per_shape=variants_per_shape
                )
            )
        return self.plan_cache

    def disable_plan_cache(self) -> None:
        self.plan_cache = None

    def enable_memory_governor(
        self,
        budget_pages: float = 512.0,
        policy: Optional[MemoryPolicy] = None,
        metrics=None,
        tracer=None,
    ):
        """Turn on the shared-budget memory governor (:mod:`repro.governor`).

        Every subsequent :meth:`execute` is admitted against the budget
        with a reservation sized from the plan's estimated memory (queuing,
        then shedding with
        :class:`~repro.common.errors.AdmissionRejected` when saturated),
        and memory-consuming operators degrade by spilling instead of
        raising ``ResourceExhausted`` when their grants are squeezed.

        ``metrics`` / ``tracer`` attach ``governor.*`` observability to
        admission decisions and renegotiations.
        """
        from repro.governor import MemoryGovernor

        if policy is None:
            policy = MemoryPolicy(budget_pages=budget_pages)
        self.memory_governor = MemoryGovernor(
            policy, metrics=metrics, tracer=tracer
        )
        return self.memory_governor

    def disable_memory_governor(self) -> None:
        self.memory_governor = None

    # ------------------------------------------------------------ transactions

    def enable_transactions(
        self,
        path: Optional[str] = None,
        checkpoint_interval: int = 16,
        crash_hook=None,
        metrics=None,
        tracer=None,
    ):
        """Turn on MVCC-lite snapshot transactions (:mod:`repro.txn`).

        With ``path``, commits are durable: each one appends a checksummed
        record to a write-ahead log and fsyncs before returning, and every
        ``checkpoint_interval`` commits the log is folded into an atomic
        checkpoint.  Re-opening a database on the same ``path`` runs
        recovery first (committed suffix replayed, torn tail truncated,
        uncommitted write-sets never seen).  Without ``path``,
        transactions provide isolation only.

        Once enabled, :meth:`insert` / :meth:`load_raw` stage into the
        calling thread's open transaction (or autocommit as a
        single-statement transaction), every statement reads from a pinned
        snapshot, and plan-cache invalidation coalesces to commit
        boundaries instead of firing per insert.
        """
        from repro.txn import TransactionManager

        if self.txn_manager is None:
            self.txn_manager = TransactionManager(
                self.catalog,
                directory=path,
                governor_source=lambda: self.memory_governor,
                metrics=metrics,
                tracer=tracer,
                checkpoint_interval=checkpoint_interval,
                crash_hook=crash_hook,
            )
            self.txn_manager.add_invalidation_callback(
                self._invalidate_cached_plans
            )
        return self.txn_manager

    def close(self) -> None:
        """Release durable resources (WAL file handle).  Safe to re-call."""
        if self.txn_manager is not None:
            self.txn_manager.close()

    def _require_txn_manager(self):
        if self.txn_manager is None:
            from repro.common.errors import TransactionError

            raise TransactionError(
                "transactions are not enabled: call enable_transactions() first"
            )
        return self.txn_manager

    def _thread_txn(self):
        """The calling thread's open implicit transaction, or ``None``."""
        txn = getattr(self._txn_local, "txn", None)
        if txn is not None and txn.state != "active":
            self._txn_local.txn = None
            return None
        return txn

    def begin(self):
        """Open the calling thread's implicit transaction."""
        manager = self._require_txn_manager()
        if self._thread_txn() is not None:
            from repro.common.errors import TransactionError

            raise TransactionError(
                "a transaction is already open on this thread"
            )
        txn = manager.begin()
        self._txn_local.txn = txn
        return txn

    def commit(self) -> int:
        """Commit the thread's implicit transaction; returns the new epoch."""
        manager = self._require_txn_manager()
        txn = self._thread_txn()
        if txn is None:
            from repro.common.errors import TransactionError

            raise TransactionError("no open transaction on this thread")
        self._txn_local.txn = None
        return manager.commit(txn)

    def rollback(self) -> None:
        """Discard the thread's implicit transaction (no-op write-set)."""
        manager = self._require_txn_manager()
        txn = self._thread_txn()
        if txn is None:
            from repro.common.errors import TransactionError

            raise TransactionError("no open transaction on this thread")
        self._txn_local.txn = None
        manager.rollback(txn)

    # Explicit handles (the server holds one per session, across threads).

    def begin_txn(self):
        return self._require_txn_manager().begin()

    def commit_txn(self, txn) -> int:
        return self._require_txn_manager().commit(txn)

    def rollback_txn(self, txn) -> None:
        self._require_txn_manager().rollback(txn)

    def _invalidate_cached_plans(self, tables=None) -> None:
        """Drop cached plans affected by a data/statistics/DDL change."""
        if self.plan_cache is None:
            return
        if tables is None:
            self.plan_cache.clear()
        else:
            self.plan_cache.invalidate_tables(tables)

    # ------------------------------------------------------------------ DDL

    def create_table(self, name: str, columns: Sequence[tuple[str, str]]):
        """Create a table from ``(column, type)`` pairs."""
        table = self.catalog.create_table(name, Schema.of(*columns))
        if self.txn_manager is not None:
            self.txn_manager.on_create_table(table)
        return table

    def create_index(self, name: str, table: str, column: str, kind: str = "sorted"):
        index = self.catalog.create_index(name, table, column, kind)
        self._invalidate_cached_plans([table])
        return index

    def insert(self, table: str, rows) -> None:
        """Insert rows.

        With transactions enabled the rows stage into the calling thread's
        open transaction (visible to others only at commit) or autocommit
        as one single-statement transaction; plan-cache invalidation then
        happens once per commit.  Without transactions the legacy direct
        path applies immediately and invalidates per call.
        """
        if self.txn_manager is not None:
            self._stage_or_autocommit(table, rows, raw=False)
            return
        self.catalog.table(table).insert_many(rows)
        self.catalog.rebuild_indexes(table)
        self._invalidate_cached_plans([table])

    def load_raw(self, table: str, rows: list) -> None:
        """Bulk load pre-coerced tuples and rebuild indexes."""
        if self.txn_manager is not None:
            self._stage_or_autocommit(table, rows, raw=True)
            return
        self.catalog.table(table).load_raw(rows)
        self.catalog.rebuild_indexes(table)
        self._invalidate_cached_plans([table])

    def _stage_or_autocommit(self, table: str, rows, raw: bool) -> None:
        manager = self.txn_manager
        txn = self._thread_txn()
        if txn is not None:
            manager.stage(txn, table, rows, raw=raw)
            return
        manager.autocommit(table, rows, raw=raw)

    def runstats(
        self,
        tables: Optional[Sequence[str]] = None,
        num_buckets: int = 20,
        num_mcvs: int = 10,
    ) -> None:
        """Collect optimizer statistics (the paper's RUNSTATS step)."""
        collect_runstats(
            self.catalog, tables, num_buckets=num_buckets, num_mcvs=num_mcvs
        )
        self._invalidate_cached_plans(tables)

    # ---------------------------------------------------------------- queries

    def _to_query(self, statement: str | Query) -> Query:
        if isinstance(statement, Query):
            return statement
        from repro.sql.binder import bind_sql

        return bind_sql(statement, self.catalog)

    def execute(
        self,
        statement: str | Query,
        params: Optional[dict[str, Any]] = None,
        pop: Optional[PopConfig] = None,
        meter: Optional[WorkMeter] = None,
        tracer=None,
        metrics=None,
        faults=None,
        profile: bool = False,
        progress=None,
        cancel=None,
        plan_cache=None,
        snapshot=None,
    ) -> Result:
        """Run a statement; POP is enabled by default.

        ``tracer`` / ``metrics`` (see :mod:`repro.obs`) attach structured
        tracing and metric collection to this statement; both default to
        off, which costs nothing.  ``faults`` (a
        :class:`repro.resilience.FaultPlan`) runs the statement under
        fault injection with the execution guard engaged.  ``profile=True``
        attaches the live per-operator profiler (results land on the
        report's attempts); ``progress`` (a
        :class:`repro.obs.ProgressEstimator`) receives work-budget updates
        and CHECK-point refinements while the statement runs.

        ``cancel`` (a :class:`~repro.common.cancel.CancelToken`) makes the
        statement cooperatively cancellable: admission waits, CHECK points,
        emit sites, and blocking operator phases all poll it, and a set
        token unwinds with
        :class:`~repro.common.errors.ExecutionCancelled` after releasing
        spill files and the governor reservation.  ``plan_cache`` overrides
        the database-wide cache for this statement (the server passes a
        per-session cache here so sessions cannot poison each other's
        plans); pass nothing to keep using :attr:`plan_cache`.

        ``snapshot`` pins the statement to an explicit
        :class:`repro.txn.Snapshot` (the server passes the session
        transaction's).  When omitted and transactions are enabled, the
        statement reads at the calling thread's open transaction's
        snapshot, or a fresh per-statement pin — either way every retry,
        spill, and re-optimization round of the statement sees one
        immutable row-set.
        """
        config = pop if pop is not None else PopConfig()
        effective_cache = plan_cache if plan_cache is not None else self.plan_cache
        stmt = None
        run_params = params
        if (
            effective_cache is not None
            and isinstance(statement, str)
            and cache_usable(config)
        ):
            # Normalize: lift literals to markers so repeated statements
            # differing only in literal values share one cache shape.  The
            # lifted values join the caller's bind parameters at runtime
            # (namespaces are disjoint: ``__litN`` vs user markers).
            stmt = parameterize_sql(statement, self.catalog)
            query = stmt.query
            run_params = dict(params or {})
            run_params.update(stmt.params)
        else:
            query = self._to_query(statement)
        if snapshot is None and self.txn_manager is not None:
            txn = self._thread_txn()
            snapshot = (
                txn.snapshot if txn is not None
                else self.txn_manager.pin_snapshot()
            )
        governor = self.memory_governor
        reservation = None
        if governor is not None:
            # Size the reservation from a compile-time estimate of the
            # plan's working memory (sort/hash/temp footprints).  The
            # sizing pass is not charged to the statement's meter — it is
            # the admission decision, not the statement's work.
            from repro.governor import estimate_plan_memory

            sizing = self.optimizer.optimize(query)
            requested = estimate_plan_memory(sizing.plan, self.cost_params)
            label = statement if isinstance(statement, str) else "query"
            reservation = governor.admit(
                requested, label=str(label)[:60], cancel=cancel
            )
            if config.memory is None:
                config = replace(config, memory=governor.policy)
        driver = PopDriver(
            self.optimizer, config, tracer=tracer, metrics=metrics,
            profile=profile, progress=progress,
        )
        feedback = self.learning.seed() if self.learning is not None else None
        try:
            rows, report = driver.run(
                query,
                params=run_params,
                meter=meter,
                feedback=feedback,
                faults=faults,
                plan_cache=effective_cache if stmt is not None else None,
                statement=stmt,
                reservation=reservation,
                cancel=cancel,
                snapshot=snapshot,
            )
        finally:
            if reservation is not None:
                governor.release(reservation)
        if governor is not None and report.spilled:
            governor.record_spill(
                {
                    "files": report.spill_files,
                    "bytes": report.spill_bytes,
                    "pages": report.spill_pages,
                }
            )
        if self.learning is not None and feedback is not None:
            self.learning.absorb(feedback)
        return Result(columns=query.output_names, rows=rows, report=report)

    def execute_without_pop(
        self,
        statement: str | Query,
        params: Optional[dict[str, Any]] = None,
        meter: Optional[WorkMeter] = None,
    ) -> Result:
        """The paper's baseline: static optimization, no checkpoints."""
        return self.execute(statement, params=params, pop=NO_POP, meter=meter)

    def explain(
        self,
        statement: str | Query,
        params: Optional[dict[str, Any]] = None,
        pop: Optional[PopConfig] = None,
    ) -> str:
        """The plan (with checkpoints) the statement would run with."""
        from repro.core.placement import place_checkpoints

        query = self._to_query(statement)
        config = pop if pop is not None else PopConfig()
        opt = self.optimizer.optimize(query)
        placement = place_checkpoints(
            opt.plan,
            config,
            self.optimizer.cost_model,
            is_spj=not (query.has_aggregates or query.distinct),
        )
        return explain_plan(placement.plan)
