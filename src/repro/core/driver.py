"""The POP driver: the optimize → check → execute → re-optimize loop.

This is the paper's Figure 3 architecture.  One :meth:`PopDriver.run` call
performs the initial optimization, inserts checkpoints, executes, and — each
time a CHECK fires — harvests feedback and intermediate results, re-invokes
the optimizer, and re-executes, oscillating up to the configured
re-optimization limit.  The final attempt always runs without checkpoints so
termination is guaranteed (paper §7's heuristic).

Rows already pipelined to the application before an ECDC check fired are
compensated with an anti-join on the next attempt, so the application never
observes duplicates (paper §3.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.analysis.plan_lint import LintContext, assert_plan_clean
from repro.common.errors import ExecutionError, ReproError, failure_class
from repro.core.config import PopConfig
from repro.core.feedback import CardinalityFeedback
from repro.core.intermediates import harvest_execution_state
from repro.core.placement import place_checkpoints
from repro.executor.base import (
    CheckpointEvent,
    ExecutionContext,
    ReoptimizationSignal,
)
from repro.executor.meter import WorkMeter
from repro.executor.runtime import run_plan
from repro.obs import ProfileCollector, wall_clock
from repro.optimizer.fingerprint import plan_fingerprint
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.parametric import PeekingSelectivity
from repro.plan.explain import explain_plan, join_order
from repro.plan.logical import Query
from repro.plan.physical import AntiJoin, MVScan, PlanOp, Return, find_ops
from repro.resilience import FALLBACK, RAISE, ExecutionGuard, FaultInjector

#: Harvest configuration for completed runs: feedback only, no temp MVs.
_FEEDBACK_ONLY = PopConfig(reuse_policy="never")

#: Operators whose output cardinality is not an estimate of a relational
#: edge (checkpoints count, RETURN may be LIMIT-cut, ...) — excluded from
#: the q-error histogram.
_QERROR_EXCLUDED = frozenset({"CHECK", "BUFCHECK", "RETURN", "ANTIJOIN"})


def record_qerrors(metrics, plan: PlanOp, actual_cards: dict) -> None:
    """Feed per-operator |estimated/actual| into ``estimate.error.qerror``.

    Only operators that reached end-of-stream contribute (their counts are
    exact cardinalities, the same eligibility rule the feedback store uses).
    """
    for op in find_ops(plan, PlanOp):
        if op.KIND in _QERROR_EXCLUDED or op.op_id is None:
            continue
        actual = actual_cards.get(op.op_id)
        if actual is None or not actual[1]:
            continue
        est = max(float(op.est_card), 1.0)
        act = max(float(actual[0]), 1.0)
        metrics.observe("estimate.error.qerror", max(est / act, act / est))


def _collect_actuals(ctx: ExecutionContext) -> dict:
    """Snapshot per-operator runtime counters for EXPLAIN ANALYZE."""
    actuals = {}
    for op in ctx.operators:
        if op.plan.op_id is not None:
            actuals[op.plan.op_id] = (op.rows_out, op.eof_seen)
    return actuals


@dataclass
class AttemptReport:
    """What happened during one optimize+execute round."""

    plan: PlanOp
    plan_text: str
    join_order: str
    checkpoints_placed: int
    optimization_units: float
    execution_units: float
    checkpoint_events: list = field(default_factory=list)
    reused_mvs: list = field(default_factory=list)
    #: Set when this attempt ended in a re-optimization signal.
    signal_op_id: Optional[int] = None
    signal_flavor: Optional[str] = None
    signal_observed: Optional[float] = None
    signal_complete: Optional[bool] = None
    signal_reason: Optional[str] = None
    rows_emitted: int = 0
    #: op_id -> (rows emitted, reached end-of-stream) observed at runtime;
    #: feeds EXPLAIN ANALYZE (estimated vs actual per operator).
    actual_cards: dict = field(default_factory=dict)
    #: Set when this attempt ended in a classified failure (guard path).
    failure: Optional[str] = None
    failure_class: Optional[str] = None
    #: True for the conservative safe plan run after the guard gave up.
    fallback: bool = False
    #: True when this attempt re-executed a cached plan (optimizer skipped).
    cache_hit: bool = False
    #: Fingerprint of the reused cached plan.
    cache_fingerprint: Optional[str] = None
    #: The admission test that justified reuse: one dict per evaluated
    #: validity/CHECK range (all ``inside`` by construction on a hit).
    cache_admission: Optional[list] = None
    #: Memory-governor accounting: whether any operator degraded to disk,
    #: how much (in modeled pages / spill files), and which operator kinds.
    spilled: bool = False
    spill_pages: float = 0.0
    spill_files: int = 0
    spill_bytes: int = 0
    spill_categories: dict = field(default_factory=dict)
    spilled_operators: list = field(default_factory=list)
    #: Times the governor renegotiated this statement's reservation down
    #: during the attempt, and the reservation size when it ended.
    renegotiations: int = 0
    reservation_pages: Optional[float] = None
    #: Per-operator :class:`repro.obs.OpProfile` list when the statement
    #: ran with profiling enabled (``None`` otherwise — zero cost off).
    profiles: Optional[list] = None
    #: Sum of exclusive profile units; reconciles with ``execution_units``
    #: (the profile-smoke CI gate holds them within 1%).
    profile_self_units: float = 0.0

    @property
    def reoptimized(self) -> bool:
        return self.signal_op_id is not None


@dataclass
class PopReport:
    """Full account of one statement execution under POP."""

    attempts: list
    total_units: float
    wall_seconds: float
    pop_enabled: bool
    #: Resilience accounting (zeros when no guard/faults were configured).
    retries: int = 0
    backoff_units: float = 0.0
    breaker_tripped: bool = False
    fallback_used: bool = False
    fallback_reason: Optional[str] = None
    faults_injected: int = 0

    @property
    def reoptimizations(self) -> int:
        return sum(1 for a in self.attempts if a.reoptimized)

    @property
    def spilled(self) -> bool:
        """True when any attempt degraded to disk under memory pressure."""
        return any(a.spilled for a in self.attempts)

    @property
    def spill_pages(self) -> float:
        return sum(a.spill_pages for a in self.attempts)

    @property
    def spill_files(self) -> int:
        return sum(a.spill_files for a in self.attempts)

    @property
    def spill_bytes(self) -> int:
        return sum(a.spill_bytes for a in self.attempts)

    @property
    def renegotiations(self) -> int:
        return sum(a.renegotiations for a in self.attempts)

    @property
    def cache_hit(self) -> bool:
        """True when any attempt re-executed a cached plan."""
        return any(a.cache_hit for a in self.attempts)

    @property
    def profiled(self) -> bool:
        """True when any attempt carried the live profiler."""
        return any(a.profiles is not None for a in self.attempts)

    @property
    def profile_self_units(self) -> float:
        """Exclusive profile units summed across attempts."""
        return sum(a.profile_self_units for a in self.attempts)

    @property
    def op_profiles(self) -> list:
        """Every attempt's operator profiles, flattened in attempt order."""
        profiles: list = []
        for attempt in self.attempts:
            if attempt.profiles:
                profiles.extend(attempt.profiles)
        return profiles

    @property
    def final_plan(self) -> PlanOp:
        return self.attempts[-1].plan

    @property
    def checkpoint_events(self) -> list:
        events: list[CheckpointEvent] = []
        for attempt in self.attempts:
            events.extend(attempt.checkpoint_events)
        return events

    def summary(self) -> str:
        lines = [
            f"POP {'on' if self.pop_enabled else 'off'}: "
            f"{len(self.attempts)} attempt(s), "
            f"{self.reoptimizations} re-optimization(s), "
            f"{self.total_units:.1f} work units",
        ]
        for i, a in enumerate(self.attempts):
            if a.reoptimized:
                tag = (
                    f" -> reopt at CHECK[{a.signal_flavor}] op={a.signal_op_id} "
                    f"observed={a.signal_observed:.0f}"
                )
            elif a.failure is not None:
                tag = f" -> failed[{a.failure_class}]"
            else:
                tag = " -> completed"
            label = "fallback" if a.fallback else f"attempt {i}"
            lines.append(
                f"  {label}: {a.join_order} "
                f"(exec {a.execution_units:.1f}u, opt {a.optimization_units:.1f}u)"
                + tag
            )
        if self.spilled:
            lines.append(
                f"  memory: spilled {self.spill_pages:.1f} page(s) across "
                f"{self.spill_files} file(s), "
                f"{self.renegotiations} renegotiation(s)"
            )
        if self.profiled:
            lines.append(
                f"  profile: {len(self.op_profiles)} operator(s), "
                f"{self.profile_self_units:.1f}u self time attributed"
            )
        if self.retries or self.breaker_tripped or self.fallback_used:
            detail = f"  resilience: {self.retries} retry(ies)"
            if self.backoff_units:
                detail += f", {self.backoff_units:.1f}u backoff"
            if self.breaker_tripped:
                detail += ", breaker tripped"
            if self.fallback_used:
                detail += f", safe-plan fallback ({self.fallback_reason})"
            lines.append(detail)
        return "\n".join(lines)


class PopDriver:
    """Runs statements with progressive optimization."""

    def __init__(
        self,
        optimizer: Optimizer,
        config: Optional[PopConfig] = None,
        lc_above_hash_build: bool = False,
        tracer=None,
        metrics=None,
        profile: bool = False,
        progress=None,
    ):
        self.optimizer = optimizer
        self.catalog = optimizer.catalog
        self.config = config if config is not None else PopConfig()
        self.lc_above_hash_build = lc_above_hash_build
        #: Optional :class:`repro.obs.Tracer` — one span per statement,
        #: attempt, optimizer call, placement pass, and execution; events
        #: for CHECK evaluations, re-optimization signals, and harvests.
        self.tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry`.
        self.metrics = metrics
        #: When True, every attempt runs with a fresh
        #: :class:`repro.obs.ProfileCollector` and its per-operator
        #: profiles land on the :class:`AttemptReport`.
        self.profile = profile
        #: Optional :class:`repro.obs.ProgressEstimator`, fed the chosen
        #: plan's work budget per attempt and every CHECK evaluation.
        self.progress = progress

    # ------------------------------------------------------------------- run

    def run(
        self,
        query: Query,
        params: Optional[dict[str, Any]] = None,
        meter: Optional[WorkMeter] = None,
        feedback: Optional[CardinalityFeedback] = None,
        faults=None,
        plan_cache=None,
        statement=None,
        reservation=None,
        cancel=None,
        snapshot=None,
    ) -> tuple[list[tuple], PopReport]:
        """Execute ``query`` and return (rows, report).

        ``feedback`` may be pre-seeded (cross-query learning, §7); the
        driver mutates it with everything observed during this statement.
        ``faults`` is an optional :class:`repro.resilience.FaultPlan`; when
        given (or when ``config.resilience`` is set) attempts run under the
        execution guard: classified failures retry with backoff, and
        exhausted retries / blown deadlines / a tripped re-optimization
        breaker divert to the safe-plan fallback.

        ``plan_cache`` / ``statement`` engage the validity-range-aware plan
        cache (:mod:`repro.cache`): ``statement`` is the
        :class:`~repro.sql.parameterize.ParameterizedStatement` whose bound
        query is ``query``.  The first round probes the cache (admission =
        cached validity ranges evaluated at fresh estimates for
        ``statement.params``); on a hit the optimizer is skipped and the
        cached plan re-executed verbatim; on a miss the statement is
        optimized with bind-value peeking and the successful plan installed.

        ``reservation`` is this statement's admitted slice of the memory
        governor's budget (:class:`repro.governor.Reservation`, acquired
        and released by ``Database.execute``); with ``config.memory`` set
        it caps every operator grant and enables spill-based degradation.

        ``cancel`` is an optional :class:`~repro.common.cancel.CancelToken`
        polled at every CHECK point, emit site, and blocking-phase loop;
        once set, the statement unwinds with
        :class:`~repro.common.errors.ExecutionCancelled` and every spill
        file and reservation is released on the way out.

        ``snapshot`` is an optional :class:`repro.txn.Snapshot`: every
        attempt (including retries, re-optimization rounds, and the safe
        fallback) scans at the same pinned commit epoch, so concurrent
        commits never shift row-sets mid-statement.
        """
        config = self.config
        cost_model = self.optimizer.cost_model
        tracer = self.tracer
        metrics = self.metrics
        if meter is None:
            meter = WorkMeter(track_categories=metrics is not None)
        feedback = feedback if feedback is not None else CardinalityFeedback()
        reopt_limit = config.reopt_limit_for(query)
        compensation: Counter = Counter()
        delivered: list[tuple] = []
        attempts: list[AttemptReport] = []
        self._apply_reuse_policy()
        injector = FaultInjector(faults) if faults is not None else None
        guard = None
        if config.resilience is not None or injector is not None:
            guard = ExecutionGuard(
                config.resilience, meter=meter, tracer=tracer, metrics=metrics
            )
        started = wall_clock()
        stmt_span = None
        if tracer is not None:
            tracer.bind_meter(meter)
            stmt_span = tracer.start_span(
                "pop.statement",
                pop=config.enabled,
                tables=len(query.tables),
                reopt_limit=reopt_limit,
                guarded=guard is not None,
            )
        if metrics is not None:
            metrics.inc("pop.statements")
        if guard is not None:
            guard.begin_statement(injector, self.catalog)
        try:
            delivered = self._run_guarded(
                query,
                params,
                meter,
                feedback,
                config,
                cost_model,
                reopt_limit,
                compensation,
                attempts,
                guard,
                injector,
                stmt_span,
                plan_cache,
                statement,
                reservation,
                cancel,
                snapshot,
            )
        finally:
            if guard is not None:
                guard.end_statement()
            self.catalog.clear_temp_mvs()
        wall = wall_clock() - started
        if metrics is not None:
            metrics.inc("pop.attempts", len(attempts))
            for category, units in meter.by_category().items():
                metrics.set_gauge("work.units", units, category=category)
        if tracer is not None:
            tracer.end_span(
                stmt_span,
                attempts=len(attempts),
                reoptimizations=sum(1 for a in attempts if a.reoptimized),
                total_units=meter.snapshot(),
                rows=len(delivered),
                retries=guard.retries if guard is not None else 0,
                fallback=(
                    guard.fallback_reason is not None
                    if guard is not None
                    else False
                ),
            )
        return delivered, PopReport(
            attempts=attempts,
            total_units=meter.snapshot(),
            wall_seconds=wall,
            pop_enabled=config.enabled,
            retries=guard.retries if guard is not None else 0,
            backoff_units=(
                guard.backoff_units_charged if guard is not None else 0.0
            ),
            breaker_tripped=(
                guard.breaker_tripped if guard is not None else False
            ),
            fallback_used=(
                guard.fallback_reason is not None if guard is not None else False
            ),
            fallback_reason=(
                guard.fallback_reason if guard is not None else None
            ),
            faults_injected=len(injector.fired) if injector is not None else 0,
        )

    def _run_guarded(
        self,
        query: Query,
        params,
        meter: WorkMeter,
        feedback: CardinalityFeedback,
        config: PopConfig,
        cost_model,
        reopt_limit: int,
        compensation: Counter,
        attempts: list,
        guard,
        injector,
        stmt_span,
        plan_cache=None,
        statement=None,
        reservation=None,
        cancel=None,
        snapshot=None,
    ) -> list[tuple]:
        """The optimize/execute loop of :meth:`run` (Figure 3), guarded."""
        tracer = self.tracer
        metrics = self.metrics
        delivered: list[tuple] = []
        #: ``attempt`` indexes reports; ``reopt_round`` consumes the
        #: re-optimization budget.  Guard retries advance only the former,
        #: so a transient crash never eats a CHECK's re-planning round.
        attempt = 0
        reopt_round = 0
        #: Bind-value peeking: cached-path statements are optimized at
        #: their actual parameter values, so plans and validity ranges are
        #: tailored to them (and the admission test has teeth).
        peek = None
        if statement is not None and statement.params:
            peek = PeekingSelectivity(
                statement.params, base=self.optimizer.selectivity
            )
        #: The cache is probed only on the very first round: later rounds
        #: exist because runtime knowledge invalidated the plan in hand,
        #: which a cached plan cannot survive either.
        probe_cache = plan_cache is not None and statement is not None
        while True:
            attempt_span = (
                tracer.start_span("pop.attempt", parent=stmt_span, attempt=attempt)
                if tracer is not None
                else None
            )
            units_before_opt = meter.snapshot()
            can_reopt = config.enabled and reopt_round < reopt_limit
            cached = None
            if probe_cache:
                probe_cache = False
                cached = self._cache_lookup(
                    plan_cache, statement, query, config, feedback,
                    meter, cost_model, attempt_span,
                )
            if cached is not None:
                plan = cached.entry.plan
                checkpoints_placed = cached.entry.checkpoints
                opt_units = meter.snapshot() - units_before_opt
            else:
                opt_span = (
                    tracer.start_span("optimizer.optimize", parent=attempt_span)
                    if tracer is not None
                    else None
                )
                attempt_feedback = feedback if config.use_feedback else None
                if peek is not None:
                    opt = self.optimizer.optimize(
                        query, attempt_feedback, selectivity=peek
                    )
                else:
                    opt = self.optimizer.optimize(query, attempt_feedback)
                meter.charge(
                    cost_model.reoptimization_cost(opt.plans_enumerated),
                    "optimize",
                )
                opt_units = meter.snapshot() - units_before_opt
                if tracer is not None:
                    tracer.end_span(
                        opt_span,
                        plans_enumerated=opt.plans_enumerated,
                        newton_iterations=opt.newton_iterations,
                        est_cost=opt.plan.est_cost,
                    )
                if metrics is not None:
                    metrics.inc("optimizer.invocations")
                    metrics.inc(
                        "optimizer.plans_enumerated", opt.plans_enumerated
                    )
                    metrics.inc(
                        "optimizer.newton_iterations", opt.newton_iterations
                    )

                place_span = (
                    tracer.start_span(
                        "pop.place_checkpoints", parent=attempt_span
                    )
                    if tracer is not None
                    else None
                )
                if can_reopt:
                    placement = place_checkpoints(
                        opt.plan,
                        config,
                        cost_model,
                        is_spj=not (query.has_aggregates or query.distinct),
                        lc_above_hash_build=self.lc_above_hash_build,
                        tracer=tracer,
                        metrics=metrics,
                    )
                else:
                    placement = place_checkpoints(
                        opt.plan, PopConfig(enabled=False), cost_model
                    )
                if tracer is not None:
                    tracer.end_span(place_span, checkpoints=placement.count)
                plan = placement.plan
                checkpoints_placed = placement.count
            if compensation:
                # Cached plans are never reached here: compensation is empty
                # on the first round, the only one that probes the cache.
                plan = self._wrap_compensation(plan)
            if config.strict_analysis:
                self._lint_attempt_plan(
                    plan,
                    feedback,
                    attempt,
                    cached_fingerprint=(
                        cached.entry.fingerprint if cached is not None else None
                    ),
                )

            budget = None
            if config.work_budget is not None and can_reopt:
                # Escalate per attempt so a statement cannot livelock on
                # budget triggers: each round gets a larger deadline.
                budget = config.work_budget * (attempt + 1)
            ctx = ExecutionContext(
                self.catalog,
                params=params,
                cost_params=self.optimizer.cost_model.params,
                meter=meter,
                dry_run_checks=config.dry_run,
                force_trigger_op_ids=(
                    set(config.force_trigger_op_ids) if attempt == 0 else set()
                ),
                work_budget=budget,
                tracer=tracer,
                metrics=metrics,
                fault_injector=injector,
                work_deadline=(
                    guard.deadline_for_attempt(meter)
                    if guard is not None
                    else None
                ),
                cancel=cancel,
                # Statement-scoped wall deadline: set once on the first
                # attempt, shared by every retry/re-optimization round.
                wall_deadline=(
                    guard.wall_deadline_for_statement()
                    if guard is not None
                    else None
                ),
                memory=config.memory,
                reservation=reservation,
                # One collector per attempt so re-optimized rounds stay
                # separately attributable (None keeps the executor's
                # profiling sites at a single comparison).
                profiler=ProfileCollector(meter) if self.profile else None,
                progress=self.progress,
                batch_size=config.batch_size,
                snapshot=snapshot,
            )
            ctx.compensation = compensation
            renegs_before = (
                reservation.renegotiations if reservation is not None else 0
            )
            if tracer is not None:
                ctx.exec_span_id = tracer.start_span(
                    "pop.execute",
                    parent=attempt_span,
                    checkpoints=checkpoints_placed,
                    cached=cached is not None,
                )
            sink: list[tuple] = []
            units_before_exec = meter.snapshot()
            report = AttemptReport(
                plan=plan,
                plan_text=explain_plan(plan),
                join_order=join_order(plan),
                checkpoints_placed=checkpoints_placed,
                optimization_units=opt_units,
                execution_units=0.0,
                reused_mvs=[op.mv_name for op in find_ops(plan, MVScan)],
                cache_hit=cached is not None,
                cache_fingerprint=(
                    cached.entry.fingerprint if cached is not None else None
                ),
                cache_admission=(
                    [e.to_dict() for e in cached.admission.evaluations]
                    if cached is not None
                    else None
                ),
            )
            if self.progress is not None:
                self.progress.begin_attempt(plan, meter.snapshot())
            try:
                run_plan(plan, ctx, sink)
            except ReoptimizationSignal as signal:
                report.execution_units = meter.snapshot() - units_before_exec
                report.checkpoint_events = ctx.checkpoint_events
                report.actual_cards = _collect_actuals(ctx)
                report.signal_op_id = signal.check_op.op_id
                report.signal_flavor = getattr(signal.check_op, "flavor", "?")
                report.signal_observed = float(signal.observed)
                report.signal_complete = signal.complete
                report.signal_reason = signal.reason
                report.rows_emitted = ctx.rows_returned
                self._harvest_memory(ctx, report, reservation, renegs_before)
                attempts.append(report)
                if tracer is not None:
                    tracer.event(
                        "pop.reoptimize",
                        span=ctx.exec_span_id,
                        op_id=report.signal_op_id,
                        flavor=report.signal_flavor,
                        observed=report.signal_observed,
                        complete=report.signal_complete,
                        reason=report.signal_reason,
                    )
                if metrics is not None:
                    metrics.inc("pop.reoptimizations", reason=signal.reason)
                if cached is not None:
                    # Runtime proved the cached plan's ranges stale for this
                    # parameter regime — drop the variant (POP feedback
                    # invalidation) and re-optimize from scratch.
                    plan_cache.discard(
                        statement.shape, cached.entry.fingerprint
                    )
                    if metrics is not None:
                        metrics.inc(
                            "plan_cache.invalidations", reason="reoptimized"
                        )
                    if tracer is not None:
                        tracer.event(
                            "plan_cache.invalidate",
                            span=ctx.exec_span_id,
                            fingerprint=cached.entry.fingerprint,
                            reason="reoptimized",
                        )
                if ctx.rows_returned:
                    # Only compensating flavors may fire after rows went out.
                    if report.signal_flavor != "ECDC":
                        raise ExecutionError(
                            f"non-compensating checkpoint {report.signal_flavor} "
                            "fired after rows were returned"
                        ) from signal
                    for row in sink:
                        compensation[row] += 1
                    delivered.extend(sink)
                    if metrics is not None:
                        metrics.inc("pop.compensation_rows", len(sink))
                registered = harvest_execution_state(
                    ctx, signal, feedback, self.catalog, config
                )
                self._observe_attempt(
                    ctx, report, attempt_span, interrupted=True,
                    harvested_mvs=registered,
                )
                attempt += 1
                reopt_round += 1
                if guard is not None and guard.on_reoptimize(
                    report.join_order, attempt
                ):
                    guard.request_fallback(
                        "re-optimization breaker tripped"
                    )
                    delivered.extend(
                        self._run_fallback(
                            query, params, meter, compensation, attempts,
                            stmt_span, attempt, reservation, cancel, snapshot,
                        )
                    )
                    return delivered
                continue
            except ReproError as exc:
                report.execution_units = meter.snapshot() - units_before_exec
                report.checkpoint_events = ctx.checkpoint_events
                report.actual_cards = _collect_actuals(ctx)
                report.rows_emitted = ctx.rows_returned
                report.failure = str(exc)
                report.failure_class = failure_class(exc)
                self._harvest_memory(ctx, report, reservation, renegs_before)
                attempts.append(report)
                decision = guard.on_failure(exc) if guard is not None else RAISE
                self._observe_attempt(
                    ctx, report, attempt_span, interrupted=True
                )
                if decision == RAISE:
                    raise
                # Rows already pipelined to the application before the
                # failure must not be re-delivered: fold them into the
                # ECDC compensation set, same as a late CHECK (§3.3).
                if ctx.rows_returned:
                    for row in sink:
                        compensation[row] += 1
                    delivered.extend(sink)
                    if metrics is not None:
                        metrics.inc("pop.compensation_rows", len(sink))
                # Retries re-plan with whatever exact cardinalities the
                # failed attempt managed to observe (feedback only, no MV
                # promotion from a half-run plan).
                if config.use_feedback:
                    harvest_execution_state(
                        ctx, None, feedback, self.catalog, _FEEDBACK_ONLY
                    )
                attempt += 1
                if decision == FALLBACK:
                    delivered.extend(
                        self._run_fallback(
                            query, params, meter, compensation, attempts,
                            stmt_span, attempt, reservation, cancel, snapshot,
                        )
                    )
                    return delivered
                continue
            # Success.
            report.execution_units = meter.snapshot() - units_before_exec
            report.checkpoint_events = ctx.checkpoint_events
            report.actual_cards = _collect_actuals(ctx)
            report.rows_emitted = ctx.rows_returned
            self._harvest_memory(ctx, report, reservation, renegs_before)
            attempts.append(report)
            delivered.extend(sink)
            # Record the completed run's exact cardinalities (no MV
            # promotion) — this is what cross-query learning absorbs (§7).
            if config.use_feedback:
                harvest_execution_state(
                    ctx, None, feedback, self.catalog, _FEEDBACK_ONLY
                )
            if plan_cache is not None and statement is not None:
                self._cache_settle(
                    plan_cache, statement, query, plan, cached, report
                )
            self._observe_attempt(ctx, report, attempt_span, interrupted=False)
            return delivered

    def _run_fallback(
        self,
        query: Query,
        params,
        meter: WorkMeter,
        compensation: Counter,
        attempts: list,
        stmt_span,
        attempt: int,
        reservation=None,
        cancel=None,
        snapshot=None,
    ) -> list[tuple]:
        """Run the conservative safe plan (guaranteed to complete).

        POP is disabled (no CHECKs can fire), the optimizer is restricted
        to robust join flavors (hash and sort-merge — no nested loops whose
        worst case is quadratic, no temp-MV reuse from the thrashing
        attempts), and neither fault injection nor a deadline applies: the
        guard disarmed the injector in :meth:`ExecutionGuard.request_fallback`.
        The ``cancel`` token *does* still apply — a disconnected client has
        no use for a safe plan's rows, so cancellation beats completion.
        """
        tracer = self.tracer
        metrics = self.metrics
        span = (
            tracer.start_span(
                "pop.attempt", parent=stmt_span, attempt=attempt, fallback=True
            )
            if tracer is not None
            else None
        )
        options = self.optimizer.options
        saved_options = replace(options)
        options.enable_index_nljn = False
        options.enable_rescan_nljn = False
        options.enable_hash_join = True
        options.enable_merge_join = True
        options.consider_mvs = False
        options.mv_cost_zero = False
        try:
            units_before_opt = meter.snapshot()
            opt = self.optimizer.optimize(query, None)
            meter.charge(
                self.optimizer.cost_model.reoptimization_cost(
                    opt.plans_enumerated
                ),
                "optimize",
            )
            opt_units = meter.snapshot() - units_before_opt
            placement = place_checkpoints(
                opt.plan, PopConfig(enabled=False), self.optimizer.cost_model
            )
            plan = placement.plan
            if compensation:
                plan = self._wrap_compensation(plan)
            if self.config.strict_analysis:
                self._lint_attempt_plan(plan, None, attempt)
            ctx = ExecutionContext(
                self.catalog,
                params=params,
                cost_params=self.optimizer.cost_model.params,
                meter=meter,
                tracer=tracer,
                metrics=metrics,
                cancel=cancel,
                memory=self.config.memory,
                reservation=reservation,
                profiler=ProfileCollector(meter) if self.profile else None,
                progress=self.progress,
                batch_size=self.config.batch_size,
                snapshot=snapshot,
            )
            ctx.compensation = compensation
            renegs_before = (
                reservation.renegotiations if reservation is not None else 0
            )
            if tracer is not None:
                ctx.exec_span_id = tracer.start_span(
                    "pop.execute", parent=span, checkpoints=0, fallback=True
                )
            sink: list[tuple] = []
            units_before_exec = meter.snapshot()
            report = AttemptReport(
                plan=plan,
                plan_text=explain_plan(plan),
                join_order=join_order(plan),
                checkpoints_placed=0,
                optimization_units=opt_units,
                execution_units=0.0,
                fallback=True,
            )
            if self.progress is not None:
                self.progress.begin_attempt(plan, meter.snapshot())
            run_plan(plan, ctx, sink)
            report.execution_units = meter.snapshot() - units_before_exec
            report.checkpoint_events = ctx.checkpoint_events
            report.actual_cards = _collect_actuals(ctx)
            report.rows_emitted = ctx.rows_returned
            self._harvest_memory(ctx, report, reservation, renegs_before)
            attempts.append(report)
            self._observe_attempt(ctx, report, span, interrupted=False)
            return sink
        finally:
            self.optimizer.options = saved_options

    # ------------------------------------------------------------ plan cache

    def _cache_lookup(
        self,
        plan_cache,
        statement,
        query: Query,
        config: PopConfig,
        feedback: Optional[CardinalityFeedback],
        meter: WorkMeter,
        cost_model,
        attempt_span,
    ):
        """Probe the plan cache; returns the hit LookupResult or None.

        The admission test (a handful of per-edge estimates per variant) is
        charged to the meter under its own category — visibly cheaper than
        the plan enumeration it replaces.
        """
        lookup = plan_cache.lookup(
            statement.shape,
            query,
            statement.params,
            self.catalog,
            feedback=feedback if config.use_feedback else None,
            base_selectivity=self.optimizer.selectivity,
        )
        meter.charge(
            cost_model.params.reopt_per_plan * max(lookup.examined, 1),
            "plan_cache",
        )
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("plan_cache.hits" if lookup.hit else "plan_cache.misses")
            if lookup.admission_rejects:
                metrics.inc(
                    "plan_cache.admission_rejects", lookup.admission_rejects
                )
            if lookup.mutation_discards:
                metrics.inc(
                    "plan_cache.invalidations",
                    lookup.mutation_discards,
                    reason="mutated",
                )
        if self.tracer is not None:
            self.tracer.event(
                "plan_cache.hit" if lookup.hit else "plan_cache.miss",
                span=attempt_span,
                examined=lookup.examined,
                admission_rejects=lookup.admission_rejects,
                fingerprint=(
                    lookup.entry.fingerprint if lookup.hit else None
                ),
                ranges_evaluated=(
                    len(lookup.admission) if lookup.admission else 0
                ),
            )
        return lookup if lookup.hit else None

    def _cache_settle(
        self,
        plan_cache,
        statement,
        query: Query,
        plan: PlanOp,
        cached,
        report: AttemptReport,
    ) -> None:
        """After a successful attempt: install a fresh plan, or verify a
        reused one came back byte-identical (cached plans are immutable).

        Plans referencing statement-scoped state are never installed: temp
        MVs are dropped when the statement ends and compensating anti-joins
        only make sense for this statement's already-delivered rows.
        """
        metrics = self.metrics
        if cached is not None:
            if plan_fingerprint(plan) == cached.entry.fingerprint:
                return
            # Self-heal: something mutated the cached plan during
            # execution; drop it rather than ever reusing it again.
            plan_cache.discard(statement.shape, cached.entry.fingerprint)
            if metrics is not None:
                metrics.inc("plan_cache.invalidations", reason="mutated")
            if self.tracer is not None:
                self.tracer.event(
                    "plan_cache.invalidate",
                    fingerprint=cached.entry.fingerprint,
                    reason="mutated",
                )
            return
        if report.fallback or find_ops(plan, (AntiJoin, MVScan)):
            return
        entry, evicted = plan_cache.install(
            statement.shape,
            plan,
            tables={t.table for t in query.tables},
            params=statement.params,
            checkpoints=report.checkpoints_placed,
        )
        if metrics is not None:
            if entry is not None:
                metrics.inc("plan_cache.installs")
            if evicted:
                metrics.inc("plan_cache.evictions", evicted)
        if self.tracer is not None and entry is not None:
            self.tracer.event(
                "plan_cache.install",
                fingerprint=entry.fingerprint,
                evicted=evicted,
                checkpoints=entry.checkpoints,
            )

    # -------------------------------------------------------------- internals

    def _harvest_memory(
        self, ctx: ExecutionContext, report: AttemptReport, reservation,
        renegotiations_before: int,
    ) -> None:
        """Fold one attempt's memory-governor and profiling accounting into
        its report (this helper runs on every exit path: signal, failure,
        success, and fallback).

        Spill statistics survive the spill manager's cleanup (files are
        already deleted by ``run_plan``'s ``finally`` when this runs), so
        degradation stays reportable without leaking disk.
        """
        if ctx.profiler is not None:
            ctx.profiler.finalize(ctx)
            report.profiles = ctx.profiler.profiles
            report.profile_self_units = ctx.profiler.total_self_units()
            if self.metrics is not None:
                for prof in ctx.profiler.profiles:
                    if prof.self_units:
                        self.metrics.observe(
                            "profile.self_units", prof.self_units,
                            op=prof.kind,
                        )
        summary = ctx.spill_summary()
        if summary is not None and summary["files"]:
            report.spilled = True
            report.spill_pages = summary["pages"]
            report.spill_files = summary["files"]
            report.spill_bytes = summary["bytes"]
            report.spill_categories = summary["categories"]
            report.spilled_operators = sorted(
                {
                    op.plan.KIND
                    for op in ctx.operators
                    if getattr(op, "spilled", False)
                }
            )
            if self.metrics is not None:
                self.metrics.inc("governor.spilled_attempts")
        if reservation is not None:
            report.reservation_pages = reservation.pages
            report.renegotiations = (
                reservation.renegotiations - renegotiations_before
            )

    def _lint_attempt_plan(
        self,
        plan: PlanOp,
        feedback: Optional[CardinalityFeedback],
        attempt: int,
        cached_fingerprint: Optional[str] = None,
    ) -> None:
        """Strict mode: lint the plan this attempt is about to execute.

        Raises :class:`repro.analysis.PlanLintError` on error-severity
        findings; warn/info findings flow to tracing.  Re-optimized plans
        (attempt > 0) are additionally checked for consistency with the
        exact feedback harvested so far.
        """
        context = LintContext(
            catalog=self.catalog,
            cost_model=self.optimizer.cost_model,
            config=self.config,
            feedback=(
                feedback if attempt > 0 and self.config.use_feedback else None
            ),
            attempt=attempt,
            cached_fingerprint=cached_fingerprint,
        )
        findings = assert_plan_clean(
            plan, context, where=f"attempt {attempt} plan"
        )
        if self.tracer is not None:
            for finding in findings:
                self.tracer.event(
                    "analysis.finding", attempt=attempt, **finding.to_dict()
                )
        if self.metrics is not None and findings:
            for finding in findings:
                self.metrics.inc(
                    "analysis.findings",
                    rule=finding.rule,
                    severity=finding.severity,
                )

    def _observe_attempt(
        self,
        ctx: ExecutionContext,
        report: AttemptReport,
        attempt_span,
        interrupted: bool,
        harvested_mvs: Optional[list] = None,
    ) -> None:
        """Flush one attempt's observability state (no-op when unconfigured)."""
        tracer = self.tracer
        metrics = self.metrics
        if self.progress is not None:
            self.progress.end_attempt(
                ctx.meter.snapshot(), completed=not interrupted
            )
        if metrics is not None:
            for op in ctx.operators:
                if op.rows_out:
                    metrics.inc("executor.rows", op.rows_out, op=op.plan.KIND)
            if report.reused_mvs:
                metrics.inc("pop.mv_reuses", len(report.reused_mvs))
            record_qerrors(metrics, report.plan, report.actual_cards)
        if tracer is not None:
            ctx.finalize_operator_spans()
            if harvested_mvs is not None:
                tracer.event(
                    "pop.harvest",
                    span=attempt_span,
                    temp_mvs=len(harvested_mvs),
                    names=list(harvested_mvs),
                )
            tracer.end_span(
                ctx.exec_span_id,
                rows=ctx.rows_returned,
                interrupted=interrupted,
            )
            tracer.end_span(
                attempt_span,
                join_order=report.join_order,
                execution_units=report.execution_units,
                optimization_units=report.optimization_units,
                reused_mvs=list(report.reused_mvs),
                interrupted=interrupted,
            )

    def _apply_reuse_policy(self) -> None:
        options = self.optimizer.options
        options.consider_mvs = self.config.reuse_policy != "never"
        options.mv_cost_zero = self.config.reuse_policy == "always"

    @staticmethod
    def _wrap_compensation(plan: PlanOp) -> PlanOp:
        """Insert the ECDC anti-join between RETURN and the rest of the plan."""
        if not isinstance(plan, Return):
            raise ExecutionError("plan root is not RETURN")
        plan.children[0] = AntiJoin(plan.children[0], compensation_key="ecdc")
        from repro.plan.physical import number_plan

        number_plan(plan)
        return plan
