"""Cardinality feedback harvested from partial executions.

When a CHECK fires (or an operator completes), POP records what the runtime
actually observed, keyed by the *edge signature* — the set of base-table
aliases joined plus the set of predicate ids applied (paper §2.2: "an edge
is defined by the set of rows flowing through it").  The re-optimization step
consults this store before falling back to the statistical model.

Two kinds of observations exist, mirroring §3.4:

* **exact** — the producing operator reached end-of-stream, so the count is
  the true cardinality (LC/LCEM checkpoints, completed materializations).
* **lower bound** — an eager check fired before its input was exhausted
  (ECB/ECWC/ECDC); we only know the cardinality is *at least* the count.
  The estimator then uses ``max(model_estimate, bound)``, which the paper
  notes is enough to force a different plan though not necessarily the
  optimal one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Edge signature: (frozenset of aliases, frozenset of predicate ids).
EdgeSignature = tuple


@dataclass
class FeedbackEntry:
    """One observed cardinality."""

    cardinality: float
    exact: bool

    def refine(self, other: "FeedbackEntry") -> "FeedbackEntry":
        """Combine with a newer observation for the same edge."""
        if other.exact:
            return other
        if self.exact:
            return self
        return FeedbackEntry(max(self.cardinality, other.cardinality), exact=False)


class CardinalityFeedback:
    """The feedback store consulted by the cardinality estimator."""

    def __init__(self) -> None:
        self._entries: dict[EdgeSignature, FeedbackEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, signature: EdgeSignature, cardinality: float, exact: bool) -> None:
        entry = FeedbackEntry(float(cardinality), exact)
        existing = self._entries.get(signature)
        self._entries[signature] = existing.refine(entry) if existing else entry

    def lookup(self, signature: EdgeSignature) -> Optional[FeedbackEntry]:
        return self._entries.get(signature)

    def adjust(self, signature: EdgeSignature, model_estimate: float) -> float:
        """The estimate to use for an edge: exact feedback wins outright,
        a lower bound clamps the model estimate from below."""
        entry = self._entries.get(signature)
        if entry is None:
            return model_estimate
        if entry.exact:
            return entry.cardinality
        return max(model_estimate, entry.cardinality)

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> dict:
        """A copy for reports/tests."""
        return dict(self._entries)
