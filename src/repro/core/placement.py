"""Checkpoint placement (paper §4).

The placement post-pass runs over the optimizer's chosen plan and inserts
CHECK operators according to the enabled flavors:

* **LC** above every materialization point (SORT, TEMP; optionally the build
  edge of hash joins, which Figure 14 tracks as its own category);
* **LCEM** — a TEMP/CHECK pair on the outer of every nested-loop join that
  has no materialized outer yet (the paper's heuristic: if the optimizer
  picked NLJN, it believes the outer is small, so materializing it is cheap
  — and if it is not, that is precisely the error worth catching);
* **ECB** — a BUFCHECK valve on NLJN outers (instead of LCEM when enabled);
* **ECWC** — CHECK pushed *below* materialization points, reacting during
  the build instead of after it;
* **ECDC** — CHECK on pipelined join edges of SPJ queries, relying on the
  driver's anti-join compensation.

Guards from the paper: no checkpoints on cheap queries; a CHECK is placed
only where an alternative plan exists above it — operationally, where the
consumer's validity range for the edge was actually narrowed during pruning
(``require_alternatives``); no CHECK above an exact-cardinality MV scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PopConfig
from repro.core.flavors import ECB, ECDC, ECWC, LC, LCEM
from repro.optimizer.costmodel import CostModel
from repro.plan.physical import (
    BufCheck,
    Check,
    HashJoin,
    JoinOp,
    MVScan,
    NLJoin,
    PlanOp,
    Sort,
    Temp,
    number_plan,
)
from repro.plan.properties import ValidityRange


@dataclass
class PlacementResult:
    """The rewritten plan and the checkpoints that were inserted."""

    plan: PlanOp
    checkpoints: list

    @property
    def count(self) -> int:
        return len(self.checkpoints)


def _is_materialization(op: PlanOp) -> bool:
    return isinstance(op, (Sort, Temp))


def _is_exact_mv(op: PlanOp) -> bool:
    return isinstance(op, MVScan) and not op.filters


def _effective_range(
    consumer: PlanOp, edge_index: int, child: PlanOp, config: PopConfig
) -> Optional[ValidityRange]:
    """The check range for the edge ``child -> consumer``; None = no check."""
    if config.adhoc_threshold_factor is not None:
        k = config.adhoc_threshold_factor
        est = max(child.est_card, 1.0)
        return ValidityRange(low=est / k, high=est * k)
    rng = consumer.validity_ranges[edge_index].copy()
    if rng.is_trivial and config.require_alternatives:
        return None
    return rng


class CheckpointPlacer:
    """Performs the placement rewrite for one plan."""

    def __init__(
        self,
        config: PopConfig,
        cost_model: CostModel,
        is_spj: bool,
        lc_above_hash_build: bool = False,
        tracer=None,
        metrics=None,
    ):
        self.config = config
        self.cost_model = cost_model
        self.is_spj = is_spj
        self.lc_above_hash_build = lc_above_hash_build
        self.tracer = tracer
        self.metrics = metrics
        self.checkpoints: list[PlanOp] = []

    def place(self, root: PlanOp) -> PlacementResult:
        if not self.config.enabled or root.est_cost < self.config.min_cost_for_checkpoints:
            number_plan(root)
            return PlacementResult(root, [])
        new_root = self._rewrite(root)
        number_plan(new_root)
        self._report_placements()
        return PlacementResult(new_root, self.checkpoints)

    def _report_placements(self) -> None:
        """Emit one event/count per placed checkpoint (after numbering)."""
        if self.tracer is None and self.metrics is None:
            return
        for check in self.checkpoints:
            flavor = getattr(check, "flavor", "ECB")
            rng = check.check_range
            if self.metrics is not None:
                self.metrics.inc("checkpoints.placed", flavor=flavor)
            if self.tracer is not None:
                self.tracer.event(
                    "checkpoint.placed",
                    op_id=check.op_id,
                    flavor=flavor,
                    low=rng.low,
                    high=rng.high,
                    below=check.children[0].KIND,
                )

    # ------------------------------------------------------------- internals

    def _add(self, check: PlanOp) -> PlanOp:
        self.checkpoints.append(check)
        return check

    def _rewrite(self, node: PlanOp) -> PlanOp:
        for i, child in enumerate(node.children):
            new_child = self._rewrite(child)
            wrapped = self._wrap_edge(node, i, new_child)
            node.children[i] = wrapped
        return node

    def _wrap_edge(self, consumer: PlanOp, i: int, child: PlanOp) -> PlanOp:
        """Insert at most one checkpoint construct on one plan edge."""
        flavors = self.config.flavors
        config = self.config
        if isinstance(child, (Check, BufCheck)) or _is_exact_mv(child):
            return child

        # --- LC above materialization points --------------------------------
        if _is_materialization(child):
            rng = _effective_range(consumer, i, child, config)
            result = child
            if ECWC in flavors and rng is not None:
                # Eager check without compensation: below the materialization.
                inner = child.children[0]
                if not isinstance(inner, (Check, BufCheck)):
                    child.children[0] = self._add(Check(inner, rng, ECWC))
            if LC in flavors and rng is not None:
                result = self._add(Check(child, rng, LC))
            return result

        # --- hash-join build edge as an LC point (Fig. 14 category) ---------
        if (
            self.lc_above_hash_build
            and LC in flavors
            and isinstance(consumer, HashJoin)
            and i == 1
        ):
            rng = _effective_range(consumer, i, child, config)
            if rng is not None:
                return self._add(Check(child, rng, LC))

        # --- NLJN outers: ECB valve or LCEM pair ----------------------------
        if isinstance(consumer, NLJoin) and i == 0:
            rng = _effective_range(consumer, i, child, config)
            if rng is not None:
                if ECB in flavors:
                    if rng.high != float("inf"):
                        buf = int(min(config.ecb_buffer_cap, rng.high + 1))
                    else:
                        buf = int(min(config.ecb_buffer_cap, max(1.0, rng.low)))
                    return self._add(BufCheck(child, rng, max(1, buf)))
                if LCEM in flavors:
                    temp = Temp(
                        child,
                        est_cost=child.est_cost
                        + self.cost_model.temp_cost(child.est_card),
                    )
                    return self._add(Check(temp, rng, LCEM))

        # --- ECDC on pipelined join edges of SPJ queries --------------------
        if (
            ECDC in flavors
            and self.is_spj
            and isinstance(consumer, JoinOp)
            and i == 0
        ):
            rng = _effective_range(consumer, i, child, config)
            if rng is not None:
                return self._add(Check(child, rng, ECDC))

        return child


def place_checkpoints(
    root: PlanOp,
    config: PopConfig,
    cost_model: CostModel,
    is_spj: bool = True,
    lc_above_hash_build: bool = False,
    tracer=None,
    metrics=None,
) -> PlacementResult:
    """Convenience wrapper around :class:`CheckpointPlacer`."""
    placer = CheckpointPlacer(
        config, cost_model, is_spj, lc_above_hash_build,
        tracer=tracer, metrics=metrics,
    )
    return placer.place(root)
