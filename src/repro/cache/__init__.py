"""Validity-range-aware plan cache (paper §3 + §6 applied to repeated traffic).

See :mod:`repro.cache.plan_cache` for the design.
"""

from repro.cache.plan_cache import (
    CachedPlan,
    CacheStats,
    LookupResult,
    PlanCache,
    PlanCacheConfig,
    cache_usable,
)

__all__ = [
    "CachedPlan",
    "CacheStats",
    "LookupResult",
    "PlanCache",
    "PlanCacheConfig",
    "cache_usable",
]
