"""A parameterized plan cache whose admission test is the plan's validity
ranges.

Statements are keyed on their *shape* (literal-lifted canonical text, see
:mod:`repro.sql.parameterize`).  Each shape holds a small LRU set of plan
*variants* — physical plans previously produced by the optimizer for some
parameter values, annotated with the validity ranges the enumerator narrowed
during pruning (paper §3).  Reuse is admitted by re-estimating every guarded
edge's cardinality at the *new* parameter values (bind-value peeking) and
testing the fresh estimates against the candidate's ranges: inside all of
them, the §2.2 pruning argument guarantees no considered alternative beats
the cached plan, so optimization is skipped and the plan re-executed
verbatim; outside any of them, the caller falls through to the optimizer and
installs the new plan alongside.

Invalidation:

* a CHECK firing on a reused plan (POP re-optimization) discards that
  variant — runtime proved its ranges stale;
* catalog changes (new statistics, inserts, new indexes) drop every entry
  touching the affected tables;
* a fingerprint mismatch on lookup (someone mutated a cached plan in place)
  discards the variant — cached plans are immutable by contract, and the
  cache self-heals rather than reusing a corrupted plan.

Thread-safe: every public method holds one re-entrant lock, so concurrent
misses on the same shape (a cache stampede) serialize on install and at
worst optimize redundantly, never corrupt the table.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.locking import maybe_witness
from repro.core.feedback import CardinalityFeedback
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.fingerprint import plan_fingerprint
from repro.optimizer.parametric import (
    AdmissionReport,
    PeekingSelectivity,
    evaluate_plan_validity,
)
from repro.plan.logical import Query
from repro.plan.physical import PlanOp
from repro.stats.selectivity import SelectivityEstimator
from repro.storage.catalog import Catalog


def cache_usable(config) -> bool:
    """Whether a :class:`~repro.core.config.PopConfig` permits plan caching.

    Ablation and debugging modes change what a plan *means* (dry-run checks,
    forced triggers, ad hoc check ranges) or make behavior depend on marker
    counts (adaptive re-optimization limits), so caching is disabled there —
    the cache must never change statement semantics.
    """
    return (
        config.plan_cache
        and not config.dry_run
        and not config.force_trigger_op_ids
        and config.adhoc_threshold_factor is None
        and not config.adaptive_reopt_limit
    )


@dataclass
class PlanCacheConfig:
    """Capacity knobs: shapes are the outer LRU, variants the inner one."""

    #: Maximum number of distinct statement shapes held.
    capacity: int = 64
    #: Maximum plan variants kept per shape (different parameter regimes).
    variants_per_shape: int = 4

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.variants_per_shape < 1:
            raise ValueError("variants_per_shape must be >= 1")


@dataclass
class CacheStats:
    """Monotonic event counters (mirrored into ``repro.obs`` by the driver)."""

    hits: int = 0
    misses: int = 0
    installs: int = 0
    evictions: int = 0
    invalidations: int = 0
    admission_rejects: int = 0
    mutation_discards: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "admission_rejects": self.admission_rejects,
            "mutation_discards": self.mutation_discards,
        }


@dataclass
class CachedPlan:
    """One plan variant: the physical plan plus its identity and provenance."""

    shape: str
    plan: PlanOp
    fingerprint: str
    #: Base tables the plan reads — the invalidation footprint.
    tables: frozenset
    #: Parameter values the plan was optimized for (bind-value peeking).
    params: dict = field(default_factory=dict)
    checkpoints: int = 0
    hits: int = 0


@dataclass
class LookupResult:
    """Outcome of one cache probe."""

    entry: Optional[CachedPlan] = None
    #: Admission report of the reused entry (every range inside), or None.
    admission: Optional[AdmissionReport] = None
    #: Variants whose admission test was evaluated.
    examined: int = 0
    admission_rejects: int = 0
    mutation_discards: int = 0

    @property
    def hit(self) -> bool:
        return self.entry is not None


class PlanCache:
    """Shape-keyed, validity-range-admitted, LRU-evicted plan cache."""

    def __init__(self, config: Optional[PlanCacheConfig] = None):
        self.config = config if config is not None else PlanCacheConfig()
        self.stats = CacheStats()  # guarded-by: _lock
        #: shape -> (fingerprint -> CachedPlan); both levels ordered LRU->MRU.
        # guarded-by: _lock
        self._shapes: "OrderedDict[str, OrderedDict[str, CachedPlan]]" = (
            OrderedDict()
        )
        # Ranked "cache" in the repo lock order (repro.common.locking);
        # reentrant because lookup/install helpers nest public methods.
        self._lock = maybe_witness(threading.RLock(), "cache")

    # ---------------------------------------------------------------- lookup

    def lookup(
        self,
        shape: str,
        query: Query,
        params: dict[str, Any],
        catalog: Catalog,
        feedback: Optional[CardinalityFeedback] = None,
        base_selectivity: Optional[SelectivityEstimator] = None,
    ) -> LookupResult:
        """Probe for a reusable plan under the new parameter values.

        Builds fresh per-edge cardinality estimates for ``params`` (markers
        peeked to their bound values) and returns the most recently used
        variant whose every non-trivial validity/CHECK range contains its
        fresh estimate.  Re-fingerprints each candidate first: a mismatch
        means the cached plan was mutated in place, and the variant is
        dropped instead of reused.
        """
        with self._lock:
            result = LookupResult()
            variants = self._shapes.get(shape)
            if not variants:
                self.stats.misses += 1
                return result
            estimator = CardinalityEstimator(
                catalog,
                query,
                feedback=feedback,
                selectivity=PeekingSelectivity(params, base=base_selectivity),
            )
            for fingerprint in reversed(list(variants)):
                entry = variants[fingerprint]
                if plan_fingerprint(entry.plan) != entry.fingerprint:  # float-eq: str
                    del variants[fingerprint]
                    self.stats.mutation_discards += 1
                    self.stats.invalidations += 1
                    result.mutation_discards += 1
                    continue
                result.examined += 1
                admission = evaluate_plan_validity(entry.plan, estimator)
                if admission.admitted:
                    entry.hits += 1
                    self.stats.hits += 1
                    variants.move_to_end(fingerprint)
                    self._shapes.move_to_end(shape)
                    result.entry = entry
                    result.admission = admission
                    return result
                self.stats.admission_rejects += 1
                result.admission_rejects += 1
            if not variants:
                del self._shapes[shape]
            self.stats.misses += 1
            return result

    # --------------------------------------------------------------- install

    def install(
        self,
        shape: str,
        plan: PlanOp,
        tables,
        params: Optional[dict[str, Any]] = None,
        checkpoints: int = 0,
    ) -> tuple[Optional[CachedPlan], int]:
        """Insert a freshly optimized plan as a variant of ``shape``.

        Returns ``(entry, evicted)`` — ``entry`` is None when an identical
        plan (same fingerprint) is already cached (its slot is refreshed),
        ``evicted`` counts variants dropped to respect the capacities.
        """
        with self._lock:
            fingerprint = plan_fingerprint(plan)
            variants = self._shapes.get(shape)
            if variants is None:
                variants = OrderedDict()
                self._shapes[shape] = variants
            self._shapes.move_to_end(shape)
            if fingerprint in variants:
                variants.move_to_end(fingerprint)
                return None, 0
            entry = CachedPlan(
                shape=shape,
                plan=plan,
                fingerprint=fingerprint,
                tables=frozenset(tables),
                params=dict(params or {}),
                checkpoints=checkpoints,
            )
            variants[fingerprint] = entry
            self.stats.installs += 1
            evicted = 0
            while len(variants) > self.config.variants_per_shape:
                variants.popitem(last=False)
                evicted += 1
            while len(self._shapes) > self.config.capacity:
                _, dropped = self._shapes.popitem(last=False)
                evicted += len(dropped)
            self.stats.evictions += evicted
            return entry, evicted

    # ---------------------------------------------------------- invalidation

    def discard(self, shape: str, fingerprint: str) -> bool:
        """Drop one variant (a CHECK fired on it, or it was found mutated)."""
        with self._lock:
            variants = self._shapes.get(shape)
            if variants is None or fingerprint not in variants:
                return False
            del variants[fingerprint]
            if not variants:
                del self._shapes[shape]
            self.stats.invalidations += 1
            return True

    def invalidate_tables(self, tables) -> int:
        """Drop every entry reading any of ``tables`` (stats/data/DDL change)."""
        affected = frozenset(tables)
        dropped = 0
        with self._lock:
            for shape in list(self._shapes):
                variants = self._shapes[shape]
                for fingerprint in list(variants):
                    if variants[fingerprint].tables & affected:
                        del variants[fingerprint]
                        dropped += 1
                if not variants:
                    del self._shapes[shape]
            self.stats.invalidations += dropped
        return dropped

    def clear(self) -> int:
        """Drop everything (counts as invalidation)."""
        with self._lock:
            dropped = len(self)
            self._shapes.clear()
            self.stats.invalidations += dropped
            return dropped

    # ------------------------------------------------------------ inspection

    def entries(self) -> list[CachedPlan]:
        """Snapshot of all variants, LRU shape first."""
        with self._lock:
            return [
                entry
                for variants in self._shapes.values()
                for entry in variants.values()
            ]

    def shapes(self) -> list[str]:
        with self._lock:
            return list(self._shapes)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._shapes.values())

    def __contains__(self, shape: str) -> bool:
        with self._lock:
            return shape in self._shapes
