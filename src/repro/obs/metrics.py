"""Named counters, gauges, and fixed-bucket histograms.

The registry is a flat map from ``(name, labels)`` to a value; labels are
passed as keyword arguments and stored as a sorted tuple, so
``inc("check.evaluations", flavor="LC", triggered=True)`` and a later call
with the same labels hit the same series.  Everything is plain Python —
no background threads, no dependencies — and a snapshot is an ordinary
dict, so benchmark harnesses can diff before/after states.

Histograms use fixed bucket upper bounds (cumulative, Prometheus-style):
``observe`` finds the first bound >= value and increments every bucket from
there up, plus ``count`` and ``sum``.  The q-error histogram the driver
feeds (`estimate.error.qerror`) uses :data:`QERROR_BUCKETS`, the standard
decades used by cardinality-estimation papers.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.common.locking import maybe_witness

#: General-purpose bucket bounds (work units, row counts, ...).
DEFAULT_BUCKETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)

#: Q-error bounds: max(est/actual, actual/est) is >= 1 by construction; the
#: first bucket therefore counts near-perfect estimates.
QERROR_BUCKETS = (1.5, 2.0, 4.0, 10.0, 100.0, 1_000.0, 10_000.0)

_INF = float("inf")


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _label_text(labels: tuple) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: tuple):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs including +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets + (_INF,), self.counts):
            running += n
            out.append((bound, running))
        return out

    def as_dict(self) -> dict:
        return {
            "buckets": {
                ("+Inf" if b == _INF else b): c for b, c in self.cumulative()
            },
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """A process-local registry of named metric series."""

    def __init__(self) -> None:
        # Ranked "obs.metrics" in the repo lock order (repro.common.locking):
        # safe to take while holding the governor condition, never the
        # other way around.
        self._lock = maybe_witness(threading.Lock(), "obs.metrics")
        self._counters: dict[tuple, float] = {}  # guarded-by: _lock
        self._gauges: dict[tuple, float] = {}  # guarded-by: _lock
        self._histograms: dict[tuple, _Histogram] = {}  # guarded-by: _lock
        # guarded-by: _lock
        self._declared_buckets: dict[str, tuple] = {
            "estimate.error.qerror": QERROR_BUCKETS,
        }

    # --------------------------------------------------------------- counters

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    # ----------------------------------------------------------------- gauges

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    # ------------------------------------------------------------- histograms

    def declare_histogram(self, name: str, buckets: tuple) -> None:
        """Pin the bucket bounds ``observe(name, ...)`` will use."""
        with self._lock:
            self._declared_buckets[name] = tuple(sorted(buckets))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = _Histogram(
                    self._declared_buckets.get(name, DEFAULT_BUCKETS)
                )
                self._histograms[key] = hist
            hist.observe(value)

    # ------------------------------------------------------------- inspection

    def get(self, name: str, **labels: Any) -> float:
        """Current value of a counter or gauge series (0 when absent)."""
        key = _key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        with self._lock:
            return sum(
                v for (n, _), v in self._counters.items() if n == name
            )

    def histogram(self, name: str, **labels: Any) -> Optional[dict]:
        with self._lock:
            hist = self._histograms.get(_key(name, labels))
            return hist.as_dict() if hist is not None else None

    def snapshot(self) -> dict:
        """A plain-dict snapshot of every series (stable key order)."""

        def series(store: dict) -> dict:
            return {
                f"{name}{_label_text(labels)}": value
                for (name, labels), value in sorted(store.items())
            }

        with self._lock:
            return {
                "counters": series(self._counters),
                "gauges": series(self._gauges),
                "histograms": {
                    f"{name}{_label_text(labels)}": hist.as_dict()
                    for (name, labels), hist in sorted(
                        self._histograms.items()
                    )
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -------------------------------------------------------------- rendering

    def render_text(self) -> str:
        """Aligned human-readable dump (the CLI's ``\\metrics`` output)."""
        snap = self.snapshot()
        lines: list[str] = []
        scalars = {**snap["counters"], **snap["gauges"]}
        if scalars:
            width = max(len(k) for k in scalars)
            for key in sorted(scalars):
                value = scalars[key]
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{key.ljust(width)}  {text}")
        for key, hist in snap["histograms"].items():
            lines.append(f"{key}  count={hist['count']} sum={hist['sum']:g}")
            for bound, cum in hist["buckets"].items():
                bound_text = bound if isinstance(bound, str) else f"{bound:g}"
                lines.append(f"  le={bound_text:>6}  {cum}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_prometheus(self) -> str:
        """Prometheus-style exposition (names with dots become underscores)."""
        lines: list[str] = []

        def prom_name(name: str) -> str:
            return name.replace(".", "_").replace("-", "_")

        with self._lock:
            for (name, labels), value in sorted(self._counters.items()):
                lines.append(
                    f"{prom_name(name)}_total{_prom_labels(labels)} {value:g}"
                )
            for (name, labels), value in sorted(self._gauges.items()):
                lines.append(
                    f"{prom_name(name)}{_prom_labels(labels)} {value:g}"
                )
            for (name, labels), hist in sorted(self._histograms.items()):
                base = prom_name(name)
                for bound, cum in hist.cumulative():
                    bound_text = "+Inf" if bound == _INF else f"{bound:g}"
                    extra = (("le", bound_text),)
                    lines.append(
                        f"{base}_bucket{_prom_labels(labels + extra)} {cum}"
                    )
                lines.append(
                    f"{base}_count{_prom_labels(labels)} {hist.count}"
                )
                lines.append(f"{base}_sum{_prom_labels(labels)} {hist.sum:g}")
        return "\n".join(lines)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format: backslash,
    double quote, and line feed are the three characters that must be
    escaped inside a quoted label value."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: tuple) -> str:
    if not labels:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in labels)
        + "}"
    )
