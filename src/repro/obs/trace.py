"""Structured tracing: spans, events, and JSONL export.

A *span* covers an interval of work (a statement, an attempt, one optimizer
call, one operator's lifetime); an *event* marks a point in time (a CHECK
evaluation, a re-optimization signal).  Every record carries two clocks:

* ``t`` / ``t0`` / ``t1`` — wall-clock seconds (``time.perf_counter``),
  kept for reference only; and
* ``u`` / ``u0`` / ``u1`` — deterministic *work units* read from the bound
  :class:`~repro.executor.meter.WorkMeter`, the same cost currency the
  optimizer models, so traces are reproducible across machines.

Spans nest through explicit parent ids (callers that know their parent pass
it) or through the tracer's implicit span stack (``start_span`` pushes,
``end_span`` pops).  ``end_span`` is idempotent so interrupted executions —
a :class:`ReoptimizationSignal` unwinds the operator tree without closing
it — can be finalized by the driver after the fact.

The export format is JSON Lines: one object per record, spans and events
interleaved in start order.  :func:`read_jsonl` round-trips a file back
into the list of record dicts.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional, TextIO

from repro.common.locking import maybe_witness


def wall_clock() -> float:
    """Wall-clock seconds (monotonic, reference only).

    The single sanctioned wall-clock source outside :mod:`repro.obs`: the
    engine contract checker (:mod:`repro.analysis.contract`) forbids direct
    ``time.*`` calls elsewhere so that every timing dependency is explicit
    and mockable.  Work-unit clocks, not this, are what reproduced figures
    are built on.
    """
    return time.perf_counter()


class Tracer:
    """Collects spans and events for one or more statement executions.

    The tracer is deliberately permissive: unknown parents, double-ended
    spans, and events outside any span are all legal.  Instrumentation
    sites guard with ``if tracer is not None`` — an absent tracer costs
    one comparison, nothing else.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._meter = None
        # Ranked "obs.trace" in the repo lock order (repro.common.locking):
        # emission is safe under the governor condition, and the tracer
        # itself never takes another policy lock.
        self._lock = maybe_witness(threading.Lock(), "obs.trace")
        self._records: list[dict] = []  # guarded-by: _lock
        self._open: dict[int, dict] = {}  # guarded-by: _lock
        self._stack: list[int] = []  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock

    # ----------------------------------------------------------------- clocks

    def bind_meter(self, meter) -> None:
        """Use ``meter`` for work-unit timestamps from now on."""
        self._meter = meter

    def _units(self) -> Optional[float]:
        return self._meter.snapshot() if self._meter is not None else None

    # ------------------------------------------------------------------ spans

    def start_span(
        self, name: str, parent: Optional[int] = None, **attrs: Any
    ) -> int:
        """Open a span and return its id.

        ``parent=None`` nests under the innermost open span (the implicit
        stack); pass an explicit id to pin the hierarchy regardless of call
        order (operator spans do this — their opens interleave).
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if parent is None and self._stack:
                parent = self._stack[-1]
            record = {
                "type": "span",
                "id": span_id,
                "parent": parent,
                "name": name,
                "t0": self._clock(),
                "t1": None,
                "u0": self._units(),
                "u1": None,
                "attrs": dict(attrs),
            }
            self._records.append(record)
            self._open[span_id] = record
            self._stack.append(span_id)
            return span_id

    def end_span(self, span_id: Optional[int], **attrs: Any) -> None:
        """Close a span (idempotent; unknown ids are ignored)."""
        if span_id is None:
            return
        with self._lock:
            record = self._open.pop(span_id, None)
            if record is None:
                return
            record["t1"] = self._clock()
            record["u1"] = self._units()
            if attrs:
                record["attrs"].update(attrs)
            # Remove from the implicit stack wherever it sits; closes of
            # interrupted subtrees arrive out of order.
            for i in range(len(self._stack) - 1, -1, -1):
                if self._stack[i] == span_id:
                    del self._stack[i]
                    break

    @contextmanager
    def span(self, name: str, parent: Optional[int] = None, **attrs: Any):
        """``with tracer.span("optimizer.optimize"):`` convenience."""
        span_id = self.start_span(name, parent=parent, **attrs)
        try:
            yield span_id
        finally:
            self.end_span(span_id)

    # ----------------------------------------------------------------- events

    def event(self, name: str, span: Optional[int] = None, **attrs: Any) -> None:
        """Record a point event, attached to ``span`` or the current span."""
        with self._lock:
            if span is None and self._stack:
                span = self._stack[-1]
            self._records.append(
                {
                    "type": "event",
                    "span": span,
                    "name": name,
                    "t": self._clock(),
                    "u": self._units(),
                    "attrs": dict(attrs),
                }
            )

    # ------------------------------------------------------------- inspection

    @property
    def records(self) -> list[dict]:
        """All records, in start order (span ``t1``/``u1`` filled on end).

        Returns a snapshot list; record dicts are shared, so a span that
        ends after the snapshot still gets its ``t1``/``u1`` filled in.
        """
        with self._lock:
            return list(self._records)

    def spans(self, name: Optional[str] = None) -> list[dict]:
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list[dict]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def children(self, span_id: int) -> list[dict]:
        """Direct child spans of ``span_id``, in start order."""
        return [
            r
            for r in self.records
            if r["type"] == "span" and r["parent"] == span_id
        ]

    def clear(self) -> None:
        with self._lock:
            self._records = []
            self._open = {}
            self._stack = []

    # ----------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(_jsonable(r), default=str) for r in self.records
        )

    def write_jsonl(self, target: str | TextIO) -> None:
        """Write all records to a path or an open text stream."""
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text + ("\n" if text else ""))
        else:
            with open(target, "w") as f:
                f.write(text + ("\n" if text else ""))


def _jsonable(value: Any) -> Any:
    """Strict-JSON projection: non-finite floats become strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def read_jsonl(source: str | TextIO | Iterable[str]) -> list[dict]:
    """Load trace records back from a path, stream, or iterable of lines."""
    if isinstance(source, str):
        with open(source) as f:
            lines = f.readlines()
    else:
        lines = list(source)
    return [json.loads(line) for line in lines if line.strip()]
