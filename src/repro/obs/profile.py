"""Live per-operator profiling with exclusive (self) time attribution.

Every execution attempt can carry a :class:`ProfileCollector`; the runtime
arms it over the freshly built operator tree — the same opt-in shape as
tracing, metrics, and fault injection: ``ctx.profiler is None`` keeps the
executor's hot path at one comparison per open/close and zero allocations.

Attribution works by *frame accounting* rather than interval subtraction.
Operator intervals overlap arbitrarily (a parent's ``open`` spans its whole
subtree; an NLJN inner is re-opened per outer row), so subtracting child
open→close windows from the parent's cannot yield exclusive time.  Instead
the collector wraps each operator's ``open``/``next``/``rebind``/``reset``
instance methods; every call pushes a frame recording the work-meter and
wall-clock readings on entry, and child frames report their inclusive
duration up to the enclosing frame on exit:

    self = (exit - entry) - sum(inclusive durations of direct child frames)

Summed over all frames of an attempt this is a *partition* of the attempt's
execution work: ``sum(p.self_units) == execution_units`` up to float
rounding, which is the invariant the profile-smoke CI step cross-checks
against the :class:`~repro.executor.meter.WorkMeter` (within 1%).

Wall time uses :func:`repro.obs.trace.wall_clock`, the single sanctioned
clock source (contract rule ``profile-exclusive-time``); work units come
from the deterministic meter, so unit profiles are reproducible while wall
profiles reflect the host.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.trace import wall_clock

#: Operator kinds whose emitted row count is not an estimable edge
#: cardinality (mirrors the driver's q-error exclusions): CHECK/BUFCHECK
#: are transparent, RETURN may be LIMIT-truncated, ANTIJOIN compensates.
QERROR_EXCLUDED = frozenset({"CHECK", "BUFCHECK", "RETURN", "ANTIJOIN"})

#: Instance methods wrapped for frame accounting.  ``close`` is excluded on
#: purpose: the runtime closes operators in a flat ``finally`` loop where
#: per-operator cleanup charges nothing, and wrapping it would complicate
#: the idempotence the ``close-guarded`` contract rule demands.
_WRAPPED_METHODS = ("open", "next", "next_batch", "rebind", "reset")

#: Spill-manager category -> operator KIND that spills under it.
_SPILL_KINDS = {"sort": "SORT", "hash": "HSJOIN", "temp": "TEMP"}


@dataclass
class OpProfile:
    """Accounting for one operator instance of one execution attempt."""

    op_id: int
    kind: str
    label: str  #: ``plan.describe()`` at arm time
    est_card: float
    rows_in: int = 0  #: sum of direct children's rows_out
    rows_out: int = 0
    eof: bool = False  #: reached end-of-stream (rows_out is then exact)
    opens: int = 0  #: ``open`` invocations (NLJN inners re-open per row)
    calls: int = 0  #: wrapped method invocations (open+next+rebind+reset)
    self_units: float = 0.0  #: exclusive work units (children subtracted)
    total_units: float = 0.0  #: inclusive work units (subtree)
    self_wall: float = 0.0  #: exclusive wall seconds
    total_wall: float = 0.0  #: inclusive wall seconds
    spill_pages: float = 0.0  #: this operator's share of spilled pages
    qerror: Optional[float] = None  #: max(est/act, act/est), EOF only
    extras: dict = field(default_factory=dict)  #: per-kind detail counters
    _active: int = 0  #: frames of this operator currently on the stack
    _extras_done: bool = False  #: extras captured (first close wins)

    def to_dict(self) -> dict:
        """JSON-ready record (one line of the profile JSONL export)."""
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "label": self.label,
            "est_card": self.est_card,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "eof": self.eof,
            "opens": self.opens,
            "calls": self.calls,
            "self_units": self.self_units,
            "total_units": self.total_units,
            "self_wall": self.self_wall,
            "total_wall": self.total_wall,
            "spill_pages": self.spill_pages,
            "qerror": self.qerror,
            "extras": dict(self.extras),
        }


class ProfileCollector:
    """Per-attempt profile accumulator; armed by ``run_plan``.

    One collector profiles one execution attempt (the driver creates a
    fresh one per attempt so re-optimized rounds stay distinguishable).
    ``arm`` is idempotent per operator, mirroring the fault injector.
    """

    def __init__(self, meter, clock: Callable[[], float] = wall_clock):
        self.meter = meter
        self.clock = clock
        self.profiles: list[OpProfile] = []
        self._by_op: dict[int, OpProfile] = {}  # id(operator) -> profile
        #: Frame stack shared by every wrapped method:
        #: ``[profile, units_enter, wall_enter, child_units, child_wall]``.
        self._stack: list[list] = []
        self.armed_units: Optional[float] = None
        #: on_open/on_close invocations — lets tests assert the obs-off
        #: fast path never reaches the hooks.
        self.hook_calls = 0
        self.finalized = False

    # ---------------------------------------------------------------- arming

    def arm(self, ctx) -> None:
        """Wrap every operator registered in ``ctx`` (idempotent per op)."""
        if self.armed_units is None:
            self.armed_units = self.meter.units
        for op in ctx.operators:
            if id(op) in self._by_op:
                continue
            prof = OpProfile(
                op_id=op.plan.op_id or -1,
                kind=op.plan.KIND,
                label=op.plan.describe(),
                est_card=float(op.plan.est_card),
            )
            self._by_op[id(op)] = prof
            self.profiles.append(prof)
            for name in _WRAPPED_METHODS:
                if hasattr(op, name):
                    self._wrap(op, name, prof)

    def _wrap(self, op, name: str, prof: OpProfile) -> None:
        inner = getattr(op, name)
        meter = self.meter
        clock = self.clock
        stack = self._stack

        def profiled(*args):
            prof.calls += 1
            prof._active += 1
            frame = [prof, meter.units, clock(), 0.0, 0.0]
            stack.append(frame)
            try:
                return inner(*args)
            finally:
                stack.pop()
                du = meter.units - frame[1]
                dt = clock() - frame[2]
                prof._active -= 1
                prof.self_units += du - frame[3]
                prof.self_wall += dt - frame[4]
                if prof._active == 0:
                    # Outermost frame of this operator only, so re-entrant
                    # chains (e.g. CHECK.reset -> TEMP.reset) never double
                    # count inclusive time.
                    prof.total_units += du
                    prof.total_wall += dt
                if stack:
                    parent = stack[-1]
                    parent[3] += du
                    parent[4] += dt

        setattr(op, name, profiled)

    # ----------------------------------------------------------------- hooks

    def on_open(self, op) -> None:
        """Lifecycle hook from :meth:`repro.executor.base.Operator.open`."""
        self.hook_calls += 1
        prof = self._by_op.get(id(op))
        if prof is not None:
            prof.opens += 1

    def on_close(self, op) -> None:
        """Lifecycle hook from :meth:`repro.executor.base.Operator.close`.

        Extras are captured on the *first* close: the base ``close`` runs
        before subclass cleanup clears build tables and buffers, so the
        detail counters still reflect the execution.
        """
        self.hook_calls += 1
        prof = self._by_op.get(id(op))
        if prof is not None:
            prof.rows_out = op.rows_out
            prof.eof = op.eof_seen
            if not prof._extras_done:
                prof._extras_done = True
                prof.extras = op.profile_extras()

    # -------------------------------------------------------------- finalize

    def finalize(self, ctx) -> None:
        """Fold post-run state into the profiles (idempotent).

        Fills rows in/out, EOF flags, q-error for operators that reached
        end-of-stream, per-operator ``profile_extras`` detail, and the
        spill attribution (pages split evenly among the spilled operators
        of each spill category — statistics survive spill cleanup).
        """
        if self.finalized:
            return
        self.finalized = True
        by_op_id: dict[int, OpProfile] = {}
        for op in ctx.operators:
            prof = self._by_op.get(id(op))
            if prof is None:
                continue
            prof.rows_out = op.rows_out
            prof.eof = op.eof_seen
            if not prof._extras_done:
                prof._extras_done = True
                prof.extras = op.profile_extras()
            by_op_id[prof.op_id] = prof
        for op in ctx.operators:
            prof = self._by_op.get(id(op))
            if prof is None:
                continue
            prof.rows_in = sum(
                by_op_id[child.op_id].rows_out
                for child in op.plan.children
                if child.op_id in by_op_id
            )
            if prof.eof and prof.kind not in QERROR_EXCLUDED:
                est = max(float(prof.est_card), 1.0)
                act = max(float(prof.rows_out), 1.0)
                prof.qerror = max(est / act, act / est)
        summary = ctx.spill_summary()
        if summary:
            for category, pages in summary.get("categories", {}).items():
                kind = _SPILL_KINDS.get(category)
                spillers = [
                    self._by_op[id(op)]
                    for op in ctx.operators
                    if id(op) in self._by_op
                    and op.plan.KIND == kind
                    and getattr(op, "spilled", False)
                ]
                if not spillers:
                    continue
                share = pages / len(spillers)
                for prof in spillers:
                    prof.spill_pages += share

    # ------------------------------------------------------------- reporting

    def total_self_units(self) -> float:
        """Sum of exclusive units — must reconcile with execution units."""
        return sum(p.self_units for p in self.profiles)

    def total_self_wall(self) -> float:
        return sum(p.self_wall for p in self.profiles)

    def by_op_id(self) -> dict[int, OpProfile]:
        return {p.op_id: p for p in self.profiles}

    def records(self) -> list[dict]:
        return [p.to_dict() for p in self.profiles]

    def to_jsonl(self) -> str:
        """One JSON object per operator, driver-attempt order."""
        return "\n".join(json.dumps(r, sort_keys=True) for r in self.records())


def write_profiles_jsonl(path: str, attempts: list) -> int:
    """Write every profiled attempt of a report to ``path`` (JSONL).

    Each line carries its attempt index so multi-round POP executions stay
    attributable.  Returns the number of lines written; writes nothing and
    returns 0 when no attempt was profiled (no empty artifact files).
    """
    lines: list[str] = []
    for i, attempt in enumerate(attempts):
        for prof in attempt.profiles or ():
            record = prof.to_dict()
            record["attempt"] = i
            lines.append(json.dumps(record, sort_keys=True))
    if not lines:
        return 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines)


def render_profile_table(profiles) -> str:
    """Fixed-width per-operator profile table (CLI ``\\profile last``)."""
    headers = (
        "op", "kind", "est", "out", "q", "self_u", "total_u",
        "self_ms", "spill_p",
    )
    rows = []
    for p in profiles:
        rows.append(
            (
                str(p.op_id),
                p.kind,
                f"{p.est_card:.0f}",
                f"{p.rows_out}" if p.eof else f"{p.rows_out}+",
                f"{p.qerror:.1f}" if p.qerror is not None else "-",
                f"{p.self_units:.2f}",
                f"{p.total_units:.2f}",
                f"{p.self_wall * 1e3:.2f}",
                f"{p.spill_pages:.1f}" if p.spill_pages else "-",
            )
        )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
