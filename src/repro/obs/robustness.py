"""Robustness maps: cost surfaces over cardinality perturbations.

Validity ranges answer a binary question — *would re-optimization beat this
plan at cardinality c?* — but robustness work (Graefe et al., "Visualizing
the robustness of query execution") argues the full *shape* of the cost
surface matters: a plan whose cost explodes just outside its range is
fragile even if the range itself is wide.  This module sweeps a log-spaced
cardinality grid around a chosen plan's most expensive join edges and
recosts the plan at every grid point with the real cost model — including
its sort/hash spill discontinuities, which is where fragility lives — and
emits the surface as JSON (benchmark/CI artifact) and as an ASCII heatmap
(``explain``-style terminal rendering).

The recost is the optimizer's own arithmetic re-applied: each perturbed
edge scales every cardinality above it in the plan, and every operator's
local cost is re-derived from its (scaled) input/output cardinalities via
the same ``*_cost`` functions the optimizer used.  Operators without a
cardinality-parameterized cost function fall back to scaling their original
local cost linearly with input growth — conservative, and exact at the
estimate point.
"""

from __future__ import annotations

import json
import math

#: Character ramp for the heatmap, coldest (cheapest) to hottest.
_RAMP = " .:-=+*#%@"

_JOIN_KINDS = ("NLJOIN", "HSJOIN", "MSJOIN")


def _join_edges(plan):
    """Candidate (join, child_index, validity_range) edges of a plan.

    Edges with a narrowed (non-trivial) validity range come first, ranked
    by the join's estimated cost — the same edges CHECKs guard, and the
    ones whose mis-estimation is most expensive.
    """
    narrowed = []
    trivial = []
    for op in plan.walk():
        if op.KIND not in _JOIN_KINDS:
            continue
        ranges = getattr(op, "validity_ranges", None) or []
        for idx, _child in enumerate(op.children):
            rng = ranges[idx] if idx < len(ranges) else None
            entry = (float(op.est_cost), op, idx, rng)
            if rng is not None and not rng.is_trivial:
                narrowed.append(entry)
            else:
                trivial.append(entry)
    narrowed.sort(key=lambda e: -e[0])
    trivial.sort(key=lambda e: -e[0])
    return narrowed + trivial


def _factor_grid(est_card: float, rng, points: int) -> list[float]:
    """Log-spaced multipliers spanning past the edge's validity bounds.

    Defaults to [1/8, 8]; a narrowed bound widens the sweep to 2x beyond
    it so the surface shows what lies outside the guaranteed region.  The
    grid always contains the factor 1.0 (the estimate itself) exactly.
    """
    lo, hi = 0.125, 8.0
    if rng is not None and est_card > 0:
        if rng.low and rng.low > 0:
            lo = min(lo, (rng.low / est_card) / 2.0)
        if rng.high and math.isfinite(rng.high):
            hi = max(hi, (rng.high / est_card) * 2.0)
    span = math.log(hi / lo)
    factors = [lo * math.exp(span * i / (points - 1)) for i in range(points)]
    nearest = min(range(points), key=lambda i: abs(math.log(factors[i])))
    factors[nearest] = 1.0
    return factors


def _local_cost(op, cm, in_cards: list[float], out_card: float) -> float:
    """Re-derive one operator's local cost at perturbed cardinalities.

    Uses the cost model's own functions wherever the operator kind has
    one parameterized purely by cardinalities, so spill steps reappear at
    the right grid points.
    """
    kind = op.KIND
    if kind == "HSJOIN":
        return cm.hash_join_cost(in_cards[0], in_cards[1], out_card)
    if kind == "MSJOIN":
        return cm.merge_join_cost(in_cards[0], in_cards[1], out_card, False, False)
    if kind == "NLJOIN":
        if getattr(op, "method", None) == "rescan":
            return cm.nljn_rescan_cost(in_cards[0], in_cards[1], out_card)
        # Index NLJN: per-probe cost depends on catalog detail not carried
        # by the plan node; derive it from the plan's own local cost at the
        # estimate and scale linearly with the outer (probe count).
        base_outer = max(float(op.children[0].est_card), 1.0)
        emit = float(op.est_card) * cm.params.cpu_emit
        per_probe = max(float(op.local_cost) - emit, 0.0) / base_outer
        return in_cards[0] * per_probe + out_card * cm.params.cpu_emit
    if kind == "SORT":
        return cm.sort_cost(in_cards[0])
    if kind == "TEMP":
        return cm.temp_cost(in_cards[0])
    if kind == "GRPBY":
        return cm.group_by_cost(in_cards[0], out_card)
    if kind == "DISTINCT":
        return cm.distinct_cost(in_cards[0], out_card)
    if kind in ("CHECK", "BUFCHECK"):
        return cm.check_cost(in_cards[0])
    # Leaves and row-shufflers (scans, PROJECT, RETURN, HAVING, ANTIJOIN):
    # scale the plan's local cost with input growth; exact at factor 1.
    base_in = sum(float(c.est_card) for c in op.children)
    now_in = sum(in_cards)
    local = max(float(op.local_cost), 0.0)
    if base_in <= 0 or not op.children:
        return local
    return local * (now_in / base_in)


def _recost(plan, cm, scaling: dict[int, float]) -> float:
    """Total plan cost with the edges in ``scaling`` (op_id -> factor)
    perturbed; every ancestor's cardinalities scale multiplicatively."""

    def visit(op):
        total = 0.0
        in_cards = []
        mult = scaling.get(op.op_id, 1.0)
        for child in op.children:
            child_cost, child_mult = visit(child)
            total += child_cost
            in_cards.append(float(child.est_card) * child_mult)
            mult *= child_mult
        out_card = float(op.est_card) * mult
        total += _local_cost(op, cm, in_cards, out_card)
        return total, mult

    return visit(plan)[0]


class RobustnessMap:
    """Cost surface of one plan over a cardinality grid (1 or 2 edges)."""

    def __init__(self, plan, cost_model, points: int = 9, max_edges: int = 2):
        self.plan = plan
        self.cost_model = cost_model
        self.points = max(int(points), 3)
        self.max_edges = max(1, min(int(max_edges), 2))
        self._result = None

    def compute(self) -> dict:
        """Sweep the grid; returns (and caches) the JSON-ready surface."""
        if self._result is not None:
            return self._result
        picked = []
        seen_children = set()
        for _, join, idx, rng in _join_edges(self.plan):
            child = join.children[idx]
            if child.op_id in seen_children:
                continue
            seen_children.add(child.op_id)
            picked.append((join, idx, child, rng))
            if len(picked) >= self.max_edges:
                break
        edges = []
        factor_axes = []
        card_axes = []
        for join, _idx, child, rng in picked:
            est = max(float(child.est_card), 1.0)
            factors = _factor_grid(est, rng, self.points)
            factor_axes.append(factors)
            card_axes.append([est * f for f in factors])
            edges.append(
                {
                    "join_op_id": join.op_id,
                    "join": join.describe(),
                    "edge_op_id": child.op_id,
                    "edge": child.describe(),
                    "est_card": est,
                    "valid_low": rng.low if rng is not None else 0.0,
                    "valid_high": (
                        rng.high
                        if rng is not None and math.isfinite(rng.high)
                        else None
                    ),
                }
            )
        base_cost = _recost(self.plan, self.cost_model, {})
        cost: list = []
        if not picked:
            cost = [[base_cost]]
            factor_axes = [[1.0]]
            card_axes = [[float(self.plan.est_card)]]
        elif len(picked) == 1:
            (_, _, child, _) = picked[0]
            cost = [
                [
                    _recost(self.plan, self.cost_model, {child.op_id: f})
                    for f in factor_axes[0]
                ]
            ]
        else:
            id0 = picked[0][2].op_id
            id1 = picked[1][2].op_id
            for f1 in factor_axes[1]:
                cost.append(
                    [
                        _recost(
                            self.plan, self.cost_model, {id0: f0, id1: f1}
                        )
                        for f0 in factor_axes[0]
                    ]
                )
        flat = [c for row in cost for c in row]
        max_cost = max(flat)
        min_cost = min(flat)
        self._result = {
            "edges": edges,
            "factors": factor_axes,
            "cards": card_axes,
            "base_cost": base_cost,
            "cost": cost,
            "min_cost": min_cost,
            "max_cost": max_cost,
            # Worst grid cost relative to the cost at the estimate: 1.0 is
            # a perfectly flat (maximally robust) surface.
            "fragility": max_cost / max(base_cost, 1e-9),
        }
        return self._result

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.compute(), indent=indent, sort_keys=True)

    def heatmap(self) -> str:
        """ASCII rendering: rows sweep edge 1 (if any), columns edge 0."""
        result = self.compute()
        lines = ["robustness map: plan cost over edge-cardinality grid"]
        for axis, edge in enumerate(result["edges"]):
            bound = (
                f"validity=[{edge['valid_low']:.0f}, "
                + (
                    f"{edge['valid_high']:.0f}]"
                    if edge["valid_high"] is not None
                    else "inf)"
                )
            )
            lines.append(
                f"  {'x' if axis == 0 else 'y'}: {edge['join']} <- "
                f"{edge['edge']} est={edge['est_card']:.0f} {bound}"
            )
        lo, hi = result["min_cost"], result["max_cost"]
        span = math.log(hi / lo) if hi > lo > 0 else 0.0

        def shade(value: float) -> str:
            if span <= 0:
                return _RAMP[0]
            t = math.log(value / lo) / span
            return _RAMP[min(int(t * (len(_RAMP) - 1)), len(_RAMP) - 1)]

        col_factors = result["factors"][0]
        row_factors = (
            result["factors"][1] if len(result["factors"]) > 1 else [1.0]
        )
        for i, row in enumerate(result["cost"]):
            label = f"{row_factors[i]:7.3f}x" if len(row_factors) > 1 else " " * 8
            lines.append(f"  {label} |{''.join(shade(c) for c in row)}|")
        marks = "".join(
            "^" if f == 1.0 else " " for f in col_factors
        )
        lines.append(f"  {' ' * 8} |{marks}| (^ = estimate)")
        lines.append(
            f"  x factors {col_factors[0]:.3f}..{col_factors[-1]:.3f}, "
            f"cost [{lo:.1f}, {hi:.1f}], "
            f"fragility={result['fragility']:.2f}"
        )
        return "\n".join(lines)
