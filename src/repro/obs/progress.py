"""Progress estimation from work-unit-weighted operator budgets.

The cost model prices a plan in the same work units the
:class:`~repro.executor.meter.WorkMeter` charges at runtime, so the plan's
root estimated cost *is* a budget for the attempt: fraction done is simply
units spent over units budgeted.  That budget is wrong exactly when the
cardinality estimates are wrong — which is the one thing POP measures — so
the estimator refines it at every CHECK-point evaluation: observing ``act``
rows where the optimizer estimated ``est`` rescales the not-yet-spent
remainder by ``act/est`` (the still-pending operators sit above the
mismeasured edge and their budgets scale roughly linearly with its
cardinality).  A completed attempt snaps the budget to the true spend.

Progress is surfaced three ways, all optional:

* gauges ``progress.fraction`` / ``progress.eta_work_units`` on the
  attached :class:`~repro.obs.metrics.MetricsRegistry`;
* a ``callback(fraction, eta_work_units)`` for drivers and servers;
* an in-memory ``history`` the CLI's ``\\progress`` verb renders.

Like every observability surface here the estimator is opt-in: the
executor consults ``ctx.progress`` behind a single ``is None`` check.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Refinement ratios are clamped so one wildly mis-estimated (or empty)
#: edge cannot swing the ETA by more than two orders of magnitude at once;
#: later checkpoints re-refine from the already-adjusted budget.
_MIN_RATIO = 1.0 / 64.0
_MAX_RATIO = 64.0


class ProgressEstimator:
    """Work-unit progress for one statement (possibly several attempts).

    Each POP attempt calls :meth:`begin_attempt` with its chosen plan —
    progress restarts against the new plan's budget (a re-optimized round
    is a fresh promise about the remaining work, not a continuation of the
    abandoned one).  ``fraction`` is monotone within an attempt but may
    drop across re-optimization, which is honest: the system learned the
    previous estimate was wrong.
    """

    def __init__(
        self,
        metrics=None,
        callback: Optional[Callable[[float, float], None]] = None,
    ):
        self.metrics = metrics
        self.callback = callback
        self.fraction = 0.0
        self.eta_work_units = 0.0
        self.attempts = 0
        self.refinements = 0
        #: Every update as a dict — ``units`` (absolute meter reading),
        #: ``fraction``, ``eta_work_units``, ``event`` kind.
        self.history: list[dict] = []
        self._plan = None
        self._base = 0.0  #: meter reading when the current attempt started
        self._budget = 0.0  #: estimated total units for the current attempt

    # ------------------------------------------------------------- lifecycle

    def begin_attempt(self, plan, units_now: float) -> None:
        """Reset the budget to ``plan``'s estimated cost (one POP round)."""
        self._plan = plan
        self._base = units_now
        self._budget = max(float(plan.est_cost), 1e-9)
        self.attempts += 1
        self._update(units_now, "begin")

    def on_checkpoint(self, event) -> None:
        """Refine the budget with one CHECK-point observation.

        ``event`` is a :class:`~repro.executor.base.CheckpointEvent`; the
        estimated cardinality of the checked edge comes from the plan the
        attempt is running.
        """
        spent = max(event.units_at_event - self._base, 0.0)
        est = self._edge_estimate(event.op_id)
        if est is not None and est > 0:
            ratio = max(float(event.observed), 1.0) / max(float(est), 1.0)
            ratio = min(max(ratio, _MIN_RATIO), _MAX_RATIO)
            remaining = max(self._budget - spent, 0.0)
            self._budget = max(spent + remaining * ratio, spent, 1e-9)
            self.refinements += 1
        self._update(event.units_at_event, "checkpoint")

    def end_attempt(self, units_now: float, completed: bool) -> None:
        """Close out one attempt; a completed one pins fraction to 1.0."""
        if completed:
            self._budget = max(units_now - self._base, 1e-9)
        self._update(units_now, "end" if completed else "interrupted")

    # -------------------------------------------------------------- internals

    def _edge_estimate(self, op_id: int) -> Optional[float]:
        if self._plan is None:
            return None
        for op in self._plan.walk():
            if op.op_id == op_id:
                if op.children:
                    return float(op.children[0].est_card)
                return float(op.est_card)
        return None

    def _update(self, units_now: float, event: str) -> None:
        spent = max(units_now - self._base, 0.0)
        self.fraction = min(spent / self._budget, 1.0) if self._budget else 0.0
        self.eta_work_units = max(self._budget - spent, 0.0)
        self.history.append(
            {
                "units": units_now,
                "fraction": self.fraction,
                "eta_work_units": self.eta_work_units,
                "event": event,
            }
        )
        if self.metrics is not None:
            self.metrics.set_gauge("progress.fraction", self.fraction)
            self.metrics.set_gauge(
                "progress.eta_work_units", self.eta_work_units
            )
        if self.callback is not None:
            self.callback(self.fraction, self.eta_work_units)

    # ------------------------------------------------------------- rendering

    def render_text(self, width: int = 40) -> str:
        """ASCII progress bar plus the refinement history (CLI verb)."""
        filled = int(round(self.fraction * width))
        bar = "#" * filled + "." * (width - filled)
        lines = [
            f"[{bar}] {self.fraction * 100.0:.1f}%"
            f"  eta={self.eta_work_units:.1f} units"
            f"  attempts={self.attempts} refinements={self.refinements}"
        ]
        for entry in self.history:
            lines.append(
                f"  {entry['event']:<11} units={entry['units']:<10.1f}"
                f" fraction={entry['fraction']:.3f}"
                f" eta={entry['eta_work_units']:.1f}"
            )
        return "\n".join(lines)
