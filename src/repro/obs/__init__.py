"""repro.obs — structured tracing and metrics for the POP loop.

POP's value proposition is visibility into the gap between estimated and
actual cardinalities; this package makes that visibility systematic instead
of ad hoc.  Two zero-dependency primitives:

* :class:`Tracer` — hierarchical spans and point events with both wall-clock
  and work-unit timestamps, exportable as JSONL (one record per line).
  The driver, optimizer, checkpoint placer, and every executor operator
  emit into it when one is attached; when none is attached the
  instrumentation sites are single ``is None`` checks.
* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms with optional labels, snapshot-able as a plain dict and
  renderable as aligned text or Prometheus-style exposition.

See ``docs/observability.md`` for the trace event catalog and the metric
name registry.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    QERROR_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import Tracer, read_jsonl, wall_clock

__all__ = [
    "Tracer",
    "read_jsonl",
    "wall_clock",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QERROR_BUCKETS",
]
