"""repro.obs — structured tracing and metrics for the POP loop.

POP's value proposition is visibility into the gap between estimated and
actual cardinalities; this package makes that visibility systematic instead
of ad hoc.  Two zero-dependency primitives:

* :class:`Tracer` — hierarchical spans and point events with both wall-clock
  and work-unit timestamps, exportable as JSONL (one record per line).
  The driver, optimizer, checkpoint placer, and every executor operator
  emit into it when one is attached; when none is attached the
  instrumentation sites are single ``is None`` checks.
* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms with optional labels, snapshot-able as a plain dict and
  renderable as aligned text or Prometheus-style exposition.

On top of these, the live profiling layer:

* :class:`ProfileCollector` / :class:`OpProfile` — per-operator exclusive
  (self) time in work units and wall seconds, rows in/out, q-error, and
  spill attribution, collected by wrapping operator methods at arm time;
* :class:`ProgressEstimator` — work-unit-weighted progress with CHECK-point
  refinement, exposed as gauges and an optional callback;
* :class:`RobustnessMap` — cost surfaces over a cardinality grid around a
  plan's validity ranges (JSON + ASCII heatmap artifacts).

See ``docs/observability.md`` for the trace event catalog, the metric
name registry, and the profiling semantics.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    QERROR_BUCKETS,
    MetricsRegistry,
)
from repro.obs.profile import (
    OpProfile,
    ProfileCollector,
    render_profile_table,
    write_profiles_jsonl,
)
from repro.obs.progress import ProgressEstimator
from repro.obs.robustness import RobustnessMap
from repro.obs.trace import Tracer, read_jsonl, wall_clock

__all__ = [
    "Tracer",
    "read_jsonl",
    "wall_clock",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QERROR_BUCKETS",
    "OpProfile",
    "ProfileCollector",
    "ProgressEstimator",
    "RobustnessMap",
    "render_profile_table",
    "write_profiles_jsonl",
]
