"""DMV-style schema with engineered correlations (paper §6).

The paper's case study ran on a department-of-motor-vehicles database whose
CAR table carries strong column correlations (MAKE↔MODEL↔COLOR,
MODEL↔WEIGHT) and cross-table correlations (ZIP↔MAKE, AGE↔MAKE between CAR
and OWNER).  Those correlations break the optimizer's independence
assumption and cause cardinality under-estimates of many orders of
magnitude, which POP corrects at runtime.

This synthetic replica implements the same correlation structure:

* ``model`` functionally determines ``make`` (each model belongs to one make);
* ``color`` is drawn from a per-make preferred palette with high fidelity;
* ``weight`` is the model's base weight ± small noise;
* a car's ``zip`` equals its owner's ``zip`` with high fidelity, and makes
  cluster geographically (``zip`` range ↔ popular make);
* owner ``age`` correlates with make (certain makes skew young/old).
"""

from __future__ import annotations

#: (table, [(column, type), ...])
DMV_TABLES: dict[str, list[tuple[str, str]]] = {
    "owner": [
        ("o_id", "int"),
        ("o_name", "str"),
        ("o_age", "int"),
        ("o_gender", "str"),
        ("o_zip", "int"),
        ("o_city", "str"),
    ],
    "car": [
        ("c_id", "int"),
        ("c_owner_id", "int"),
        ("c_make", "str"),
        ("c_model", "str"),
        ("c_color", "str"),
        ("c_weight", "int"),
        ("c_year", "int"),
        ("c_zip", "int"),
    ],
    "accident": [
        ("a_id", "int"),
        ("a_car_id", "int"),
        ("a_year", "int"),
        ("a_severity", "int"),
        ("a_zip", "int"),
    ],
    "violation": [
        ("v_id", "int"),
        ("v_car_id", "int"),
        ("v_year", "int"),
        ("v_type", "str"),
        ("v_fine", "float"),
    ],
    "insurance": [
        ("i_id", "int"),
        ("i_car_id", "int"),
        ("i_company", "str"),
        ("i_premium", "float"),
        ("i_year", "int"),
    ],
    "dealer": [
        ("d_id", "int"),
        ("d_make", "str"),
        ("d_zip", "int"),
        ("d_name", "str"),
    ],
    "inspection": [
        ("p_id", "int"),
        ("p_car_id", "int"),
        ("p_year", "int"),
        ("p_result", "str"),
    ],
    "registration": [
        ("g_id", "int"),
        ("g_car_id", "int"),
        ("g_year", "int"),
        ("g_fee", "float"),
    ],
}

DMV_INDEXES: list[tuple[str, str, str, str]] = [
    ("ix_owner_pk", "owner", "o_id", "sorted"),
    ("ix_owner_zip", "owner", "o_zip", "sorted"),
    ("ix_car_pk", "car", "c_id", "sorted"),
    ("ix_car_owner", "car", "c_owner_id", "sorted"),
    ("ix_car_zip", "car", "c_zip", "sorted"),
    ("ix_car_make", "car", "c_make", "hash"),
    ("ix_accident_car", "accident", "a_car_id", "sorted"),
    ("ix_violation_car", "violation", "v_car_id", "sorted"),
    ("ix_insurance_car", "insurance", "i_car_id", "sorted"),
    ("ix_dealer_make", "dealer", "d_make", "hash"),
    ("ix_inspection_car", "inspection", "p_car_id", "sorted"),
    ("ix_registration_car", "registration", "g_car_id", "sorted"),
]

MAKES = [f"MAKE{i:02d}" for i in range(20)]
MODELS_PER_MAKE = 10
COLORS = [
    "black", "white", "silver", "grey", "red", "blue", "green",
    "yellow", "orange", "brown", "purple", "gold",
]
VIOLATION_TYPES = ["SPEED", "PARK", "SIGNAL", "DUI", "EQUIP", "LICENSE"]
INSURANCE_COMPANIES = [f"INSCO{i}" for i in range(8)]
CITIES = [f"CITY{i:02d}" for i in range(40)]
GENDERS = ["F", "M"]
ZIP_COUNT = 100


def model_name(make_index: int, model_index: int) -> str:
    return f"MODEL{make_index:02d}_{model_index}"


def base_weight(make_index: int, model_index: int) -> int:
    """Deterministic base weight per model: 1500..4350 lbs."""
    return 1500 + make_index * 120 + model_index * 45
