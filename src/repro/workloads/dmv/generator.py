"""Generator for the correlated DMV database (paper §6 case study)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.common.rng import WeightedChooser, zipf_weights
from repro.core.database import Database
from repro.workloads.dmv import schema as s


@dataclass(frozen=True)
class DmvScale:
    """Row counts (default is ~1/300 of the paper's 8M-row CAR table,
    preserving the CAR:OWNER ratio and the per-car fan-outs)."""

    owners: int = 18_000
    cars: int = 24_000
    accidents: int = 5_000
    violations: int = 8_000
    insurance: int = 24_000
    dealers: int = 1_000
    inspections: int = 16_000
    registrations: int = 24_000


def generate_dmv(
    scale: Optional[DmvScale] = None, seed: int = 7
) -> dict[str, list[tuple]]:
    """Generate the eight DMV tables with the engineered correlations."""
    scale = scale if scale is not None else DmvScale()
    rng = random.Random(seed)
    data: dict[str, list[tuple]] = {}

    # Makes are Zipf-popular; each zip has a locally dominant make.
    make_chooser = WeightedChooser(
        range(len(s.MAKES)), zipf_weights(len(s.MAKES), 1.1)
    )
    zip_favourite_make = {
        z: make_chooser.choose(rng) for z in range(s.ZIP_COUNT)
    }
    # Per-make preferred colors (3 of the 12), creating MAKE↔COLOR correlation.
    make_colors = {
        m: rng.sample(s.COLORS, 3) for m in range(len(s.MAKES))
    }
    # Per-make owner-age center, creating AGE↔MAKE correlation.
    make_age_center = {m: rng.randint(25, 65) for m in range(len(s.MAKES))}

    owners = []
    owner_zip = []
    for i in range(scale.owners):
        z = rng.randrange(s.ZIP_COUNT)
        owner_zip.append(z)
        owners.append(
            (
                i,
                f"Owner#{i:07d}",
                rng.randint(16, 90),
                rng.choice(s.GENDERS),
                z,
                s.CITIES[z % len(s.CITIES)],
            )
        )
    data["owner"] = owners

    cars = []
    car_year_lo, car_year_hi = 1985, 2004
    for i in range(scale.cars):
        owner_id = rng.randrange(scale.owners)
        oz = owner_zip[owner_id]
        # ZIP↔MAKE: 70% of cars in a zip are its favourite make.
        if rng.random() < 0.7:
            make_idx = zip_favourite_make[oz]
        else:
            make_idx = make_chooser.choose(rng)
        model_idx = rng.randrange(s.MODELS_PER_MAKE)
        # MAKE↔COLOR: 80% of a make's cars use its preferred palette.
        if rng.random() < 0.8:
            color = rng.choice(make_colors[make_idx])
        else:
            color = rng.choice(s.COLORS)
        # MODEL↔WEIGHT: tight band around the model's base weight.
        weight = s.base_weight(make_idx, model_idx) + rng.randint(-40, 40)
        # ZIP↔ZIP: a car is registered in its owner's zip 90% of the time.
        zip_code = oz if rng.random() < 0.9 else rng.randrange(s.ZIP_COUNT)
        cars.append(
            (
                i,
                owner_id,
                s.MAKES[make_idx],
                s.model_name(make_idx, model_idx),
                color,
                weight,
                rng.randint(car_year_lo, car_year_hi),
                zip_code,
            )
        )
        # AGE↔MAKE is imposed by re-rolling the owner age toward the make's
        # centre (applied below after all cars are placed).
    data["car"] = cars

    # Impose AGE↔MAKE: owners of a make cluster around its age centre.
    owner_rows = {row[0]: list(row) for row in owners}
    for car in cars:
        owner_id, make = car[1], car[2]
        make_idx = s.MAKES.index(make)
        if rng.random() < 0.75:
            centre = make_age_center[make_idx]
            owner_rows[owner_id][2] = max(
                16, min(90, centre + rng.randint(-5, 5))
            )
    data["owner"] = [tuple(row) for row in owner_rows.values()]

    data["accident"] = [
        (
            i,
            (car_id := rng.randrange(scale.cars)),
            rng.randint(1995, 2004),
            rng.randint(1, 5),
            cars[car_id][7],
        )
        for i in range(scale.accidents)
    ]
    data["violation"] = [
        (
            i,
            rng.randrange(scale.cars),
            rng.randint(1995, 2004),
            rng.choice(s.VIOLATION_TYPES),
            round(rng.uniform(20.0, 2000.0), 2),
        )
        for i in range(scale.violations)
    ]
    data["insurance"] = [
        (
            i,
            i % scale.cars,  # every car insured once (plus extras)
            rng.choice(s.INSURANCE_COMPANIES),
            round(rng.uniform(300.0, 3000.0), 2),
            rng.randint(2000, 2004),
        )
        for i in range(scale.insurance)
    ]
    data["dealer"] = [
        (
            i,
            s.MAKES[make_chooser.choose(rng)],
            rng.randrange(s.ZIP_COUNT),
            f"Dealer#{i:04d}",
        )
        for i in range(scale.dealers)
    ]
    data["inspection"] = [
        (
            i,
            rng.randrange(scale.cars),
            rng.randint(2000, 2004),
            "PASS" if rng.random() < 0.85 else "FAIL",
        )
        for i in range(scale.inspections)
    ]
    data["registration"] = [
        (
            i,
            i % scale.cars,
            rng.randint(2000, 2004),
            round(rng.uniform(20.0, 300.0), 2),
        )
        for i in range(scale.registrations)
    ]
    return data


def load_dmv(
    db: Database, scale: Optional[DmvScale] = None, seed: int = 7
) -> dict[str, int]:
    """Create the DMV schema, load data, build indexes, RUNSTATS."""
    data = generate_dmv(scale, seed)
    for table, columns in s.DMV_TABLES.items():
        db.create_table(table, columns)
        db.catalog.table(table).load_raw(data[table])
    for name, table, column, kind in s.DMV_INDEXES:
        db.create_index(name, table, column, kind)
    # Coarser statistics than the TPC-H setup: the paper's 2004-era DMV
    # installation had quantile statistics but no per-value frequencies for
    # the long tail, which is what lets correlation errors through.
    db.runstats(num_buckets=8, num_mcvs=2)
    return {table: len(rows) for table, rows in data.items()}


def make_dmv_db(
    scale: Optional[DmvScale] = None, seed: int = 7, **db_kwargs
) -> Database:
    """Convenience: a fresh database pre-loaded with DMV data."""
    db = Database(**db_kwargs)
    load_dmv(db, scale, seed)
    return db
