"""The 39 DMV-style decision-support queries (paper §6).

The paper used 39 proprietary customer queries "joining more than 10 tables
in average" whose predicates restrict correlated columns, use LIKE patterns
and IN-lists — all sources of cardinality misestimation.  This module
deterministically instantiates 39 queries from 13 templates × 3 parameter
sets over the synthetic DMV schema.  Every template restricts correlated
columns (MAKE↔MODEL↔COLOR, MODEL↔WEIGHT, ZIP↔ZIP, AGE↔MAKE), so the
independence-assuming estimator under-estimates by one to four orders of
magnitude, exactly the failure mode POP repairs.  Join widths are 2–7
tables (scaled down with the data; see DESIGN.md).
"""

from __future__ import annotations

import random

from repro.workloads.dmv import schema as s


def _instantiations(seed: int = 2004) -> list[dict]:
    """Three deterministic parameter sets shared by all templates.

    The make indices target the *popular* end of the Zipf make distribution
    (as real workloads do — people query the cars that exist), which is what
    turns the independence-assumption under-estimates into large absolute
    cardinality errors.
    """
    rng = random.Random(seed)
    sets = []
    for make_idx in (0, 1, 2):
        model_idx = rng.randrange(s.MODELS_PER_MAKE)
        weight = s.base_weight(make_idx, model_idx)
        sets.append(
            {
                "make": s.MAKES[make_idx],
                "make2": s.MAKES[(make_idx + 3) % len(s.MAKES)],
                "make3": s.MAKES[(make_idx + 7) % len(s.MAKES)],
                "model": s.model_name(make_idx, model_idx),
                "model_prefix": f"MODEL{make_idx:02d}",
                "color": rng.choice(s.COLORS),
                "wlo": weight - 60,
                "whi": weight + 60,
                "zip": rng.randrange(s.ZIP_COUNT),
                "age_lo": rng.randint(20, 55),
                "year": rng.randint(1996, 2003),
                "city": s.CITIES[rng.randrange(len(s.CITIES))],
            }
        )
    return sets


_TEMPLATES: list[tuple[str, str]] = [
    # T1: MAKE+MODEL (functional dependency) + owner join.
    (
        "make_model_owner",
        """
        SELECT o.o_id, o.o_name
        FROM car c, owner o
        WHERE c.c_owner_id = o.o_id
          AND c.c_make = '{make}' AND c.c_model = '{model}'
        """,
    ),
    # T2: MAKE+MODEL+COLOR (three-way correlation) + accidents.
    (
        "make_model_color_accidents",
        """
        SELECT count(*) AS accidents
        FROM car c, accident a
        WHERE a.a_car_id = c.c_id
          AND c.c_make = '{make}' AND c.c_model = '{model}'
          AND c.c_color = '{color}'
        """,
    ),
    # T3: MODEL + WEIGHT band (weight is determined by the model).
    (
        "model_weight_violations",
        """
        SELECT v.v_type, count(*) AS n, sum(v.v_fine) AS fines
        FROM car c, violation v
        WHERE v.v_car_id = c.c_id
          AND c.c_model = '{model}'
          AND c.c_weight BETWEEN {wlo} AND {whi}
        GROUP BY v.v_type
        ORDER BY fines DESC, v.v_type
        """,
    ),
    # T4: like T10 but with the large INSPECTION table as the unindexed-key
    # join partner — the worst of the catastrophic cases (paper: "without
    # POP the longest query took more than 20 minutes").
    (
        "zip_inspection_rescan",
        """
        SELECT p.p_result, count(*) AS n
        FROM car c, owner o, inspection p
        WHERE c.c_owner_id = o.o_id
          AND c.c_zip = o.o_zip
          AND p.p_year = c.c_year
          AND c.c_make = '{make}' AND c.c_model = '{model}'
        GROUP BY p.p_result
        ORDER BY n DESC
        """,
    ),
    # T5: AGE↔MAKE correlation + insurance premiums.
    (
        "age_make_premiums",
        """
        SELECT i.i_company, avg(i.i_premium) AS avg_premium, count(*) AS n
        FROM car c, owner o, insurance i
        WHERE c.c_owner_id = o.o_id AND i.i_car_id = c.c_id
          AND c.c_make = '{make}'
          AND o.o_age BETWEEN {age_lo} AND {age_hi}
        GROUP BY i.i_company
        ORDER BY avg_premium DESC, i.i_company
        """,
    ),
    # T6: LIKE prefix on model (all models of one make) + dealers of the make.
    (
        "model_like_dealers",
        """
        SELECT d.d_name, count(*) AS cars
        FROM car c, dealer d
        WHERE d.d_make = c.c_make
          AND c.c_model LIKE '{model_prefix}%'
          AND d.d_zip = {zip}
        GROUP BY d.d_name
        ORDER BY cars DESC, d.d_name
        """,
    ),
    # T7: IN-list of makes + color + owner city.
    (
        "make_inlist_city",
        """
        SELECT count(*) AS n
        FROM car c, owner o
        WHERE c.c_owner_id = o.o_id
          AND c.c_make IN ('{make}', '{make2}', '{make3}')
          AND c.c_color = '{color}'
          AND o.o_city = '{city}'
        """,
    ),
    # T8: wide join — car, owner, accident, violation (4 tables).
    (
        "accident_violation_wide",
        """
        SELECT o.o_id, count(*) AS events
        FROM car c, owner o, accident a, violation v
        WHERE c.c_owner_id = o.o_id
          AND a.a_car_id = c.c_id AND v.v_car_id = c.c_id
          AND c.c_make = '{make}' AND c.c_model = '{model}'
        GROUP BY o.o_id
        ORDER BY events DESC, o.o_id
        LIMIT 20
        """,
    ),
    # T9: five-table star around CAR with correlated restriction.
    (
        "five_table_star",
        """
        SELECT i.i_company, sum(i.i_premium) AS premiums, count(*) AS n
        FROM car c, insurance i, inspection p, registration g
        WHERE i.i_car_id = c.c_id AND p.p_car_id = c.c_id
          AND g.g_car_id = c.c_id
          AND c.c_make = '{make}' AND c.c_color = '{color}'
          AND p.p_result = 'FAIL'
        GROUP BY i.i_company
        ORDER BY premiums DESC, i.i_company
        """,
    ),
    # T10: the catastrophic case.  The ZIP↔ZIP correlation makes the
    # (car ⋈ owner) outer ~300× larger than estimated, and the accident
    # join key (a_zip) has no index, so the optimizer picks a rescan nested
    # loop that looks nearly free and is ruinous at the actual cardinality.
    (
        "zip_accident_rescan",
        """
        SELECT o.o_city, count(*) AS n
        FROM car c, owner o, accident a
        WHERE c.c_owner_id = o.o_id
          AND c.c_zip = o.o_zip
          AND a.a_zip = o.o_zip
          AND c.c_make = '{make}' AND c.c_model = '{model}'
        GROUP BY o.o_city
        ORDER BY n DESC, o.o_city
        LIMIT 10
        """,
    ),
    # T11: six tables, correlated car predicates feeding a deep join tree.
    (
        "six_table_deep",
        """
        SELECT o.o_city, count(*) AS n, sum(v.v_fine) AS fines
        FROM car c, owner o, violation v, insurance i, registration g
        WHERE c.c_owner_id = o.o_id AND v.v_car_id = c.c_id
          AND i.i_car_id = c.c_id AND g.g_car_id = c.c_id
          AND c.c_make = '{make}' AND c.c_model LIKE '{model_prefix}%'
          AND c.c_weight BETWEEN {wlo} AND {whi}
        GROUP BY o.o_city
        ORDER BY fines DESC, o.o_city
        """,
    ),
    # T12: make fan-out — a misestimated filtered CAR outer drives an index
    # NLJN into the dealers of the same make (dozens of matches per probe).
    (
        "make_fanout_dealers",
        """
        SELECT d.d_name, count(*) AS cars, sum(g.g_fee) AS fees
        FROM car c, registration g, dealer d
        WHERE g.g_car_id = c.c_id
          AND d.d_make = c.c_make
          AND c.c_model = '{model}'
          AND c.c_weight BETWEEN {wlo} AND {whi}
        GROUP BY d.d_name
        ORDER BY fees DESC, d.d_name
        LIMIT 10
        """,
    ),
    # T13: seven tables — the widest join in the workload.
    (
        "seven_table_audit",
        """
        SELECT o.o_id, count(*) AS records
        FROM car c, owner o, accident a, violation v, insurance i, inspection p
        WHERE c.c_owner_id = o.o_id
          AND a.a_car_id = c.c_id AND v.v_car_id = c.c_id
          AND i.i_car_id = c.c_id AND p.p_car_id = c.c_id
          AND c.c_make = '{make}' AND c.c_color = '{color}'
          AND o.o_age >= {age_lo}
        GROUP BY o.o_id
        ORDER BY records DESC, o.o_id
        LIMIT 10
        """,
    ),
]


def dmv_queries(seed: int = 2004) -> list[tuple[str, str]]:
    """The 39 (name, sql) pairs: 13 templates × 3 instantiations."""
    queries: list[tuple[str, str]] = []
    for i, params in enumerate(_instantiations(seed)):
        params = dict(params)
        params["age_hi"] = params["age_lo"] + 12
        for template_name, sql in _TEMPLATES:
            queries.append((f"{template_name}_{i}", sql.format(**params)))
    return queries
