"""TPC-H queries adapted to the engine's SQL dialect.

The engine supports one SPJ + aggregation block (like the paper's
prototype), so queries with subqueries are flattened; every adaptation is
noted on the query.  Join predicates, base-table restrictions and the
grouping structure — the things that determine plan shape, materialization
points and checkpoint opportunities — are preserved.

``Q10_MARKER`` is the Figure 11 experiment: Q10's LINEITEM literal replaced
by a parameter marker (``l_shipmode = ?``), whose bind values sweep the
actual selectivity over the Zipf-skewed shipmode domain while the optimizer
sees only the default selectivity.
"""

from __future__ import annotations

# Q1 (faithful: single-table aggregation over LINEITEM; the avg_disc /
# count columns of the original are all expressible directly).
Q1 = """
SELECT l.l_returnflag, count(*) AS count_order,
       sum(l.l_quantity) AS sum_qty,
       sum(l.l_extendedprice) AS sum_base_price,
       avg(l.l_quantity) AS avg_qty,
       avg(l.l_extendedprice) AS avg_price,
       avg(l.l_discount) AS avg_disc
FROM lineitem l
WHERE l.l_shipdate <= '1998-09-02'
GROUP BY l.l_returnflag
ORDER BY l.l_returnflag
"""

# Q6 (faithful: the forecasting-revenue-change scan; revenue =
# extendedprice * discount is approximated by summing extendedprice over the
# qualifying rows, since the engine has no scalar arithmetic in SELECT).
Q6 = """
SELECT count(*) AS qualifying, sum(l.l_extendedprice) AS revenue_base
FROM lineitem l
WHERE l.l_shipdate >= '1994-01-01'
  AND l.l_shipdate < '1995-01-01'
  AND l.l_discount BETWEEN 0.05 AND 0.07
  AND l.l_quantity < 24
"""

# Q2 (adapted: the min-supplycost correlated subquery is dropped; the outer
# SPJ block with its region/size/type restrictions is kept).
Q2 = """
SELECT su.s_name, p.p_partkey, ps.ps_supplycost
FROM part p, partsupp ps, supplier su, nation n, region r
WHERE p.p_partkey = ps.ps_partkey
  AND ps.ps_suppkey = su.s_suppkey
  AND su.s_nationkey = n.n_nationkey
  AND n.n_regionkey = r.r_regionkey
  AND p.p_size = 15
  AND p.p_type LIKE '%BRASS'
  AND r.r_name = 'EUROPE'
ORDER BY su.s_name, p.p_partkey
LIMIT 100
"""

# Q3 (faithful modulo the o_orderdate/o_shippriority grouping columns).
Q3 = """
SELECT l.l_orderkey, sum(l.l_extendedprice) AS revenue
FROM customer c, orders o, lineitem l
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND c.c_mktsegment = 'BUILDING'
  AND o.o_orderdate < '1995-03-15'
  AND l.l_shipdate > '1995-03-15'
GROUP BY l.l_orderkey
ORDER BY revenue DESC, l.l_orderkey
LIMIT 10
"""

# Q4 (adapted: EXISTS flattened to a join; the l_commitdate < l_receiptdate
# column-to-column restriction becomes a receiptdate range).
Q4 = """
SELECT o.o_orderpriority, count(*) AS order_count
FROM orders o, lineitem l
WHERE l.l_orderkey = o.o_orderkey
  AND o.o_orderdate >= '1993-07-01'
  AND o.o_orderdate < '1993-10-01'
  AND l.l_receiptdate > '1993-10-01'
GROUP BY o.o_orderpriority
ORDER BY o.o_orderpriority
"""

# Q5 (faithful; the local-supplier condition c_nationkey = s_nationkey is the
# interesting cycle-forming join predicate).
Q5 = """
SELECT n.n_name, sum(l.l_extendedprice) AS revenue
FROM customer c, orders o, lineitem l, supplier su, nation n, region r
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND l.l_suppkey = su.s_suppkey
  AND c.c_nationkey = su.s_nationkey
  AND su.s_nationkey = n.n_nationkey
  AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'ASIA'
  AND o.o_orderdate >= '1994-01-01'
  AND o.o_orderdate < '1995-01-01'
GROUP BY n.n_name
ORDER BY revenue DESC
"""

# Q7 (adapted: the (FRANCE,GERMANY)|(GERMANY,FRANCE) nation-pair disjunction
# becomes per-nation IN lists; the volume/year projection is simplified).
Q7 = """
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       sum(l.l_extendedprice) AS revenue
FROM supplier su, lineitem l, orders o, customer c, nation n1, nation n2
WHERE su.s_suppkey = l.l_suppkey
  AND o.o_orderkey = l.l_orderkey
  AND c.c_custkey = o.o_custkey
  AND su.s_nationkey = n1.n_nationkey
  AND c.c_nationkey = n2.n_nationkey
  AND n1.n_name IN ('NATION03', 'NATION07')
  AND n2.n_name IN ('NATION03', 'NATION07')
  AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
GROUP BY n1.n_name, n2.n_name
ORDER BY supp_nation, cust_nation
"""

# Q8 (adapted: market-share ratio becomes total revenue per supplier nation).
Q8 = """
SELECT n2.n_name AS supp_nation, sum(l.l_extendedprice) AS revenue
FROM part p, lineitem l, supplier su, orders o, customer c,
     nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey
  AND su.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND su.s_nationkey = n2.n_nationkey
  AND r.r_name = 'AMERICA'
  AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
  AND p.p_type = 'ECONOMY ANODIZED STEEL'
GROUP BY n2.n_name
ORDER BY supp_nation
"""

# Q9 (faithful modulo the o_year projection; note the two-column join
# between partsupp and lineitem).
Q9 = """
SELECT n.n_name, sum(l.l_extendedprice) AS profit
FROM part p, supplier su, lineitem l, partsupp ps, orders o, nation n
WHERE su.s_suppkey = l.l_suppkey
  AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey
  AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey
  AND su.s_nationkey = n.n_nationkey
  AND p.p_name LIKE '%green%'
GROUP BY n.n_name
ORDER BY n.n_name
"""

# Q10 (faithful modulo the customer-detail projection columns).
Q10 = """
SELECT c.c_custkey, sum(l.l_extendedprice) AS revenue
FROM customer c, orders o, lineitem l, nation n
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate >= '1993-10-01'
  AND o.o_orderdate < '1994-01-01'
  AND l.l_returnflag = 'R'
  AND c.c_nationkey = n.n_nationkey
GROUP BY c.c_custkey
ORDER BY revenue DESC, c.c_custkey
LIMIT 20
"""

# The Figure 11 experiment: Q10's LINEITEM literal replaced by a parameter
# marker.  Binding the ?-marker to the Zipf-distributed shipmode values
# sweeps the actual selectivity from ~0.3% to ~35% while the optimizer
# compiles with the default equality selectivity.
Q10_MARKER = """
SELECT c.c_custkey, sum(l.l_extendedprice) AS revenue
FROM customer c, orders o, lineitem l
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND l.l_shipmode = ?
GROUP BY c.c_custkey
ORDER BY revenue DESC, c.c_custkey
LIMIT 20
"""

# Q11 (adapted: the group-value > fraction-of-total HAVING subquery is
# dropped; the join/grouping structure is kept).
Q11 = """
SELECT ps.ps_partkey, sum(ps.ps_supplycost) AS value
FROM partsupp ps, supplier su, nation n
WHERE ps.ps_suppkey = su.s_suppkey
  AND su.s_nationkey = n.n_nationkey
  AND n.n_name = 'NATION07'
GROUP BY ps.ps_partkey
ORDER BY value DESC, ps.ps_partkey
LIMIT 20
"""

# Q18 (adapted: the large-quantity IN-subquery becomes the equivalent HAVING
# over the same grouping, which is the subquery's actual semantics).
Q18 = """
SELECT c.c_custkey, o.o_orderkey, sum(l.l_quantity) AS total_qty
FROM customer c, orders o, lineitem l
WHERE c.c_custkey = o.o_custkey
  AND o.o_orderkey = l.l_orderkey
GROUP BY c.c_custkey, o.o_orderkey
HAVING total_qty > 150
ORDER BY total_qty DESC, o.o_orderkey
LIMIT 10
"""

#: All adapted TPC-H queries by name.
TPCH_QUERIES: dict[str, str] = {
    "Q1": Q1,
    "Q6": Q6,
    "Q2": Q2,
    "Q3": Q3,
    "Q4": Q4,
    "Q5": Q5,
    "Q7": Q7,
    "Q8": Q8,
    "Q9": Q9,
    "Q10": Q10,
    "Q11": Q11,
    "Q18": Q18,
}
