"""Deterministic scaled TPC-H-style data generator.

``scale_factor=0.01`` (the default) produces roughly 60k lineitem rows —
large enough that join-method choices have the paper's cost structure
(index NLJN wins for small outers, hash join for large ones, sort spills are
reachable), small enough that the full benchmark suite runs in minutes.
Relative table sizes, key ranges and foreign-key fan-outs follow the TPC-H
specification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.rng import WeightedChooser, zipf_weights
from repro.common.values import date_to_days
from repro.core.database import Database
from repro.workloads.datagen import date_string
from repro.workloads.tpch import schema as s


@dataclass(frozen=True)
class TpchScale:
    """Row counts derived from the scale factor."""

    supplier: int
    customer: int
    part: int
    orders: int

    @classmethod
    def of(cls, scale_factor: float) -> "TpchScale":
        return cls(
            supplier=max(10, int(10_000 * scale_factor)),
            customer=max(50, int(150_000 * scale_factor)),
            part=max(50, int(200_000 * scale_factor)),
            orders=max(100, int(1_500_000 * scale_factor)),
        )


def generate_tpch(
    scale_factor: float = 0.01, seed: int = 42
) -> dict[str, list[tuple]]:
    """Generate all eight tables as lists of pre-coerced tuples."""
    rng = random.Random(seed)
    scale = TpchScale.of(scale_factor)
    data: dict[str, list[tuple]] = {}

    data["region"] = [(i, name) for i, name in enumerate(s.REGIONS)]
    data["nation"] = [
        (i, f"NATION{i:02d}", i % len(s.REGIONS)) for i in range(25)
    ]
    data["supplier"] = [
        (
            i,
            f"Supplier#{i:09d}",
            rng.randrange(25),
            round(rng.uniform(-999.99, 9999.99), 2),
        )
        for i in range(scale.supplier)
    ]
    data["customer"] = [
        (
            i,
            f"Customer#{i:09d}",
            rng.randrange(25),
            rng.choice(s.SEGMENTS),
            round(rng.uniform(-999.99, 9999.99), 2),
        )
        for i in range(scale.customer)
    ]
    parts = []
    for i in range(scale.part):
        name = " ".join(rng.sample(s.PART_NAME_WORDS, 3))
        ptype = (
            f"{rng.choice(s.PART_TYPE_ADJ)} "
            f"{rng.choice(s.PART_TYPE_FIN)} "
            f"{rng.choice(s.PART_TYPE_MAT)}"
        )
        parts.append(
            (
                i,
                name,
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                ptype,
                rng.randint(1, 50),
                round(900 + i % 1000 + rng.uniform(0, 100), 2),
            )
        )
    data["part"] = parts
    partsupp = []
    for i in range(scale.part):
        for j in range(4):
            partsupp.append(
                (
                    i,
                    (i + j * (scale.supplier // 4 + 1)) % scale.supplier,
                    round(rng.uniform(1.0, 1000.0), 2),
                    rng.randint(1, 9999),
                )
            )
    data["partsupp"] = partsupp

    shipmode_chooser = WeightedChooser(
        s.shipmodes(), zipf_weights(s.SHIPMODE_COUNT, s.SHIPMODE_SKEW)
    )
    orders = []
    lineitems = []
    for i in range(scale.orders):
        odate = date_string(rng, 1992, 1998)
        orders.append(
            (
                i,
                rng.randrange(scale.customer),
                rng.choice(s.ORDER_STATUS),
                round(rng.uniform(1000.0, 450_000.0), 2),
                date_to_days(odate),
                rng.choice(s.PRIORITIES),
            )
        )
        for _ in range(rng.randint(1, 7)):
            ship = date_to_days(odate) + rng.randint(1, 121)
            commit = date_to_days(odate) + rng.randint(30, 90)
            receipt = ship + rng.randint(1, 30)
            lineitems.append(
                (
                    i,
                    rng.randrange(scale.part),
                    rng.randrange(scale.supplier),
                    rng.randint(1, 50),
                    round(rng.uniform(900.0, 104_000.0), 2),
                    round(rng.uniform(0.0, 0.1), 2),
                    rng.choice(s.RETURN_FLAGS),
                    ship,
                    commit,
                    receipt,
                    shipmode_chooser.choose(rng),
                )
            )
    data["orders"] = orders
    data["lineitem"] = lineitems
    return data


def load_tpch(
    db: Database, scale_factor: float = 0.01, seed: int = 42
) -> dict[str, int]:
    """Create the TPC-H schema in ``db``, load data, build indexes, RUNSTATS.

    Returns the per-table row counts.
    """
    data = generate_tpch(scale_factor, seed)
    for table, columns in s.TPCH_TABLES.items():
        db.create_table(table, columns)
        db.catalog.table(table).load_raw(data[table])
    for name, table, column, kind in s.TPCH_INDEXES:
        db.create_index(name, table, column, kind)
    db.runstats()
    return {table: len(rows) for table, rows in data.items()}


def make_tpch_db(scale_factor: float = 0.01, seed: int = 42, **db_kwargs) -> Database:
    """Convenience: a fresh database pre-loaded with TPC-H data."""
    db = Database(**db_kwargs)
    load_tpch(db, scale_factor, seed)
    return db
