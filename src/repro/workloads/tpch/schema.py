"""TPC-H-style schema (scaled; see DESIGN.md substitution table).

Table layouts follow TPC-H closely enough that the paper's queries translate
directly; comment-only columns are dropped to keep rows lean.  One deliberate
addition: ``l_shipmode`` takes values from a *Zipf-skewed* domain so that
binding a parameter marker to different literals sweeps the predicate's
actual selectivity across two orders of magnitude — the mechanism behind the
paper's Figure 11 experiment.
"""

from __future__ import annotations

#: (table, [(column, type), ...])
TPCH_TABLES: dict[str, list[tuple[str, str]]] = {
    "region": [
        ("r_regionkey", "int"),
        ("r_name", "str"),
    ],
    "nation": [
        ("n_nationkey", "int"),
        ("n_name", "str"),
        ("n_regionkey", "int"),
    ],
    "supplier": [
        ("s_suppkey", "int"),
        ("s_name", "str"),
        ("s_nationkey", "int"),
        ("s_acctbal", "float"),
    ],
    "customer": [
        ("c_custkey", "int"),
        ("c_name", "str"),
        ("c_nationkey", "int"),
        ("c_mktsegment", "str"),
        ("c_acctbal", "float"),
    ],
    "part": [
        ("p_partkey", "int"),
        ("p_name", "str"),
        ("p_mfgr", "str"),
        ("p_brand", "str"),
        ("p_type", "str"),
        ("p_size", "int"),
        ("p_retailprice", "float"),
    ],
    "partsupp": [
        ("ps_partkey", "int"),
        ("ps_suppkey", "int"),
        ("ps_supplycost", "float"),
        ("ps_availqty", "int"),
    ],
    "orders": [
        ("o_orderkey", "int"),
        ("o_custkey", "int"),
        ("o_orderstatus", "str"),
        ("o_totalprice", "float"),
        ("o_orderdate", "date"),
        ("o_orderpriority", "str"),
    ],
    "lineitem": [
        ("l_orderkey", "int"),
        ("l_partkey", "int"),
        ("l_suppkey", "int"),
        ("l_quantity", "int"),
        ("l_extendedprice", "float"),
        ("l_discount", "float"),
        ("l_returnflag", "str"),
        ("l_shipdate", "date"),
        ("l_commitdate", "date"),
        ("l_receiptdate", "date"),
        ("l_shipmode", "str"),
    ],
}

#: (index name, table, column, kind)
TPCH_INDEXES: list[tuple[str, str, str, str]] = [
    ("ix_region_pk", "region", "r_regionkey", "sorted"),
    ("ix_nation_pk", "nation", "n_nationkey", "sorted"),
    ("ix_nation_region", "nation", "n_regionkey", "sorted"),
    ("ix_supplier_pk", "supplier", "s_suppkey", "sorted"),
    ("ix_supplier_nation", "supplier", "s_nationkey", "sorted"),
    ("ix_customer_pk", "customer", "c_custkey", "sorted"),
    ("ix_customer_nation", "customer", "c_nationkey", "sorted"),
    ("ix_part_pk", "part", "p_partkey", "sorted"),
    ("ix_partsupp_part", "partsupp", "ps_partkey", "sorted"),
    ("ix_partsupp_supp", "partsupp", "ps_suppkey", "sorted"),
    ("ix_orders_pk", "orders", "o_orderkey", "sorted"),
    ("ix_orders_cust", "orders", "o_custkey", "sorted"),
    ("ix_orders_date", "orders", "o_orderdate", "sorted"),
    ("ix_lineitem_order", "lineitem", "l_orderkey", "sorted"),
    ("ix_lineitem_part", "lineitem", "l_partkey", "sorted"),
    ("ix_lineitem_supp", "lineitem", "l_suppkey", "sorted"),
    ("ix_lineitem_shipdate", "lineitem", "l_shipdate", "sorted"),
]

#: Number of distinct l_shipmode values; frequencies are Zipf(skew) so that
#: selectivities span roughly 0.2%..50% — the Figure 11 sweep range.
SHIPMODE_COUNT = 28
SHIPMODE_SKEW = 1.8

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
RETURN_FLAGS = ["N", "R", "A"]
ORDER_STATUS = ["O", "F", "P"]
PART_TYPE_ADJ = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
PART_TYPE_MAT = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
PART_TYPE_FIN = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
]


def shipmodes() -> list[str]:
    """The skewed shipmode domain, most frequent first."""
    return [f"MODE{i:02d}" for i in range(SHIPMODE_COUNT)]
