"""Shared data-generation utilities for the workload generators."""

from __future__ import annotations

import random
from typing import Sequence

from repro.common.rng import WeightedChooser, zipf_weights


def zipf_values(
    rng: random.Random, population: Sequence, count: int, skew: float
) -> list:
    """``count`` draws from ``population`` with Zipf-distributed frequencies
    (first element most frequent)."""
    chooser = WeightedChooser(population, zipf_weights(len(population), skew))
    return [chooser.choose(rng) for _ in range(count)]


def correlated_pick(
    rng: random.Random,
    primary_value,
    mapping: dict,
    fallback: Sequence,
    fidelity: float,
):
    """Pick a value correlated with ``primary_value``.

    With probability ``fidelity`` the value comes from
    ``mapping[primary_value]`` (a sequence of preferred values); otherwise it
    is uniform over ``fallback``.  This is how the DMV generator builds the
    MAKE↔COLOR, ZIP↔ZIP, AGE↔MAKE correlations that break the optimizer's
    independence assumption.
    """
    preferred = mapping.get(primary_value)
    if preferred and rng.random() < fidelity:
        return rng.choice(preferred)
    return rng.choice(list(fallback))


def date_string(rng: random.Random, start_year: int, end_year: int) -> str:
    """A uniform ISO date between Jan 1 of start_year and Dec 28 of end_year."""
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"
