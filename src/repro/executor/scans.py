"""Scan operators: table scan, index scan (sarg or correlated), MV scan."""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator, Optional

from repro.common.errors import ExecutionError
from repro.executor.base import ExecutionContext, Operator
from repro.expr.evaluate import compile_conjunction
from repro.expr.expressions import operand_value
from repro.expr.predicates import Between, Comparison
from repro.plan.physical import IndexScan, MVScan, TableScan
from repro.storage.index import SortedIndex


class TableScanExec(Operator):
    """Sequential scan with fused filters.

    Charges I/O per page and CPU per scanned row, amortized per row so the
    work meter advances smoothly (needed for Figure 14's progress fractions).
    """

    def __init__(self, plan: TableScan, ctx: ExecutionContext):
        super().__init__(plan, ctx)
        self.table = ctx.catalog.table(plan.table)
        self._iter: Optional[Iterator[tuple]] = None
        self._filter = None
        p = ctx.cost_params
        rows = max(1, self.table.row_count)
        self._charge_per_row = (
            self.table.page_count * p.io_page / rows + p.cpu_row
        )

    def open(self) -> None:
        super().open()
        self._filter = compile_conjunction(
            self.plan.filters, self.plan.layout, self.ctx.params
        )
        # Snapshot isolation: rows are append-only and rids positional, so
        # capping the scan at the pinned watermark yields exactly the rows
        # visible at the snapshot's epoch — concurrent commits append past
        # the cap without being observed.
        visible = (
            self.ctx.snapshot.visible_rows(self.table.name)
            if self.ctx.snapshot is not None
            else None
        )
        if visible is None:
            self._iter = iter(self.table.rows)
        else:
            self._iter = islice(iter(self.table.rows), visible)

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._iter is not None and self._filter is not None
        interruptible = self.ctx.interruptible
        rejected = 0
        for row in self._iter:
            self.ctx.meter.charge(self._charge_per_row)
            if self._filter(row):
                return self.emit(row)
            # Selective filters can reject long stretches without a single
            # emit(); poll on a stride so cancel latency stays bounded.
            rejected += 1
            if interruptible and rejected % 256 == 0:
                self.ctx.check_interrupt()
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        """Vectorized scan: one filter lookup per row inside a tight local
        loop, one bulk meter charge per batch (``scanned × per-row``, so
        totals equal row mode exactly)."""
        self.require_open()
        assert self._iter is not None and self._filter is not None
        match = self._filter
        out: list[tuple] = []
        append = out.append
        interruptible = self.ctx.interruptible
        scanned = 0
        rejected = 0
        for row in self._iter:
            scanned += 1
            if match(row):
                append(row)
                if len(out) >= max_rows:
                    break
            else:
                rejected += 1
                if interruptible and rejected % 256 == 0:
                    self.ctx.check_interrupt()
        if scanned:
            self.ctx.meter.charge(scanned * self._charge_per_row)
        if not out:
            self.finish()
            return None
        return self.emit_batch(out)

    def profile_extras(self) -> dict:
        return {
            "table": self.plan.table,
            "table_rows": self.table.row_count,
            "table_pages": self.table.page_count,
        }


class IndexScanExec(Operator):
    """Index access, in two modes.

    *Sarg mode* (``plan.correlation is None``): the sargable predicate drives
    one index range/equality probe at open time.

    *Correlated mode*: the operator is the inner of an index nested-loop
    join; the NLJN calls :meth:`rebind` with each outer join-key value and
    reads the matches.
    """

    def __init__(self, plan: IndexScan, ctx: ExecutionContext):
        super().__init__(plan, ctx)
        self.table = ctx.catalog.table(plan.table)
        self.index = None
        for ix in ctx.catalog.indexes_on(plan.table):
            if ix.name == plan.index_name:
                self.index = ix
                break
        if self.index is None:
            raise ExecutionError(f"index {plan.index_name!r} not found")
        self._rids: list[int] = []
        self._pos = 0
        self._filter = None
        self.probes = 0  #: index probes issued (1 sarg, or 1 per rebind)
        self._fetch_charge = ctx.cost_model.fetch_cost_per_row(
            float(self.table.page_count)
        )
        # Snapshot watermark: index probes may return rids appended after
        # the pinned epoch (indexes are rebuilt at commit), so every rid
        # list is filtered to ``rid < visible`` before fetching.
        self._visible = (
            ctx.snapshot.visible_rows(self.table.name)
            if ctx.snapshot is not None
            else None
        )

    def _visible_rids(self, rids: Iterator[int]) -> list[int]:
        visible = self._visible
        if visible is None:
            return list(rids)
        return [rid for rid in rids if rid < visible]

    def open(self) -> None:
        super().open()
        self._filter = compile_conjunction(
            self.plan.filters, self.plan.layout, self.ctx.params
        )
        if self.plan.correlation is None:
            self._rids = self._visible_rids(self._rids_for_sarg())
            self._pos = 0
            self.probes += 1
            self.ctx.meter.charge(
                self.ctx.cost_params.index_probe_io
                * self.ctx.cost_params.random_io
                * self.ctx.cost_params.io_page
            )

    def _rids_for_sarg(self) -> Iterator[int]:
        sarg = self.plan.sarg
        if sarg is None:
            raise ExecutionError("sarg-mode index scan without a sarg")
        params = self.ctx.params
        if isinstance(sarg, Comparison):
            value = operand_value(sarg.operand, params)
            if sarg.op == "=":
                yield from self.index.lookup(value)
                return
            if not isinstance(self.index, SortedIndex):
                raise ExecutionError("range sarg over a non-sorted index")
            if sarg.op == "<":
                yield from self.index.range_scan(high=value, high_inclusive=False)
            elif sarg.op == "<=":
                yield from self.index.range_scan(high=value)
            elif sarg.op == ">":
                yield from self.index.range_scan(low=value, low_inclusive=False)
            elif sarg.op == ">=":
                yield from self.index.range_scan(low=value)
            else:
                raise ExecutionError(f"non-sargable comparison {sarg.op!r}")
            return
        if isinstance(sarg, Between):
            if not isinstance(self.index, SortedIndex):
                raise ExecutionError("BETWEEN sarg over a non-sorted index")
            low = operand_value(sarg.low, params)
            high = operand_value(sarg.high, params)
            yield from self.index.range_scan(low=low, high=high)
            return
        raise ExecutionError(f"unsupported sarg {sarg!r}")

    def rebind(self, key: Any) -> None:
        """Correlated mode: position on the matches for one probe key."""
        p = self.ctx.cost_params
        self.probes += 1
        self.ctx.meter.charge(p.index_probe_io * p.random_io * p.io_page)
        self._rids = self._visible_rids(iter(self.index.lookup(key)))
        self._pos = 0
        self.eof_seen = False

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._filter is not None
        interruptible = self.ctx.interruptible
        rejected = 0
        while self._pos < len(self._rids):
            rid = self._rids[self._pos]
            self._pos += 1
            self.ctx.meter.charge(self._fetch_charge)
            row = self.table.fetch(rid)
            if self._filter(row):
                return self.emit(row)
            rejected += 1
            if interruptible and rejected % 256 == 0:
                self.ctx.check_interrupt()
        if self.plan.correlation is None:
            self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        """Vectorized rid-list drain (both modes; correlated rebinds keep
        working because position state lives in ``_rids``/``_pos``)."""
        self.require_open()
        assert self._filter is not None
        match = self._filter
        rids = self._rids
        pos = self._pos
        n = len(rids)
        fetch = self.table.fetch
        out: list[tuple] = []
        interruptible = self.ctx.interruptible
        scanned = 0
        rejected = 0
        while pos < n and len(out) < max_rows:
            rid = rids[pos]
            pos += 1
            scanned += 1
            row = fetch(rid)
            if match(row):
                out.append(row)
            else:
                rejected += 1
                if interruptible and rejected % 256 == 0:
                    self.ctx.check_interrupt()
        self._pos = pos
        if scanned:
            self.ctx.meter.charge(scanned * self._fetch_charge)
        if not out:
            if self.plan.correlation is None:
                self.finish()
            return None
        return self.emit_batch(out)

    def profile_extras(self) -> dict:
        return {
            "index": self.plan.index_name,
            "probes": self.probes,
            "correlated": self.plan.correlation is not None,
        }


class MVScanExec(Operator):
    """Scan of a temp materialized view, with residual filters."""

    def __init__(self, plan: MVScan, ctx: ExecutionContext):
        super().__init__(plan, ctx)
        self.mv = ctx.catalog.temp_mv(plan.mv_name)
        self._iter: Optional[Iterator[tuple]] = None
        self._filter = None

    def open(self) -> None:
        super().open()
        self._filter = compile_conjunction(
            self.plan.filters, self.plan.layout, self.ctx.params
        )
        self._iter = iter(self.mv.rows)

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._iter is not None and self._filter is not None
        p = self.ctx.cost_params
        interruptible = self.ctx.interruptible
        rejected = 0
        for row in self._iter:
            self.ctx.meter.charge(p.cpu_temp_scan)
            if self._filter(row):
                return self.emit(row)
            rejected += 1
            if interruptible and rejected % 256 == 0:
                self.ctx.check_interrupt()
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        assert self._iter is not None and self._filter is not None
        match = self._filter
        out: list[tuple] = []
        append = out.append
        interruptible = self.ctx.interruptible
        scanned = 0
        rejected = 0
        for row in self._iter:
            scanned += 1
            if match(row):
                append(row)
                if len(out) >= max_rows:
                    break
            else:
                rejected += 1
                if interruptible and rejected % 256 == 0:
                    self.ctx.check_interrupt()
        if scanned:
            self.ctx.meter.charge(scanned * self.ctx.cost_params.cpu_temp_scan)
        if not out:
            self.finish()
            return None
        return self.emit_batch(out)

    def profile_extras(self) -> dict:
        return {"mv": self.plan.mv_name, "mv_rows": len(self.mv.rows)}
