"""Executor infrastructure: the open/next/close operator protocol, the
execution context, and the re-optimization signal.

Rows are plain tuples; ``None`` is the end-of-stream sentinel.  Every
operator counts the rows it emits and remembers whether it reached
end-of-stream — those counters are the raw material POP harvests as
cardinality feedback after a CHECK fires (paper §2.1: "actual cardinalities
measured during the initial run help the re-optimization step avoid the same
mistake").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import (
    ExecutionCancelled,
    ExecutionError,
    ExecutionTimeout,
    ResourceExhausted,
)
from repro.executor.meter import WorkMeter
from repro.obs import wall_clock
from repro.optimizer.costmodel import DEFAULT_COST_PARAMS, CostModel, CostParams
from repro.plan.physical import PlanOp
from repro.storage.catalog import Catalog


@dataclass
class CheckpointEvent:
    """Log record of one checkpoint evaluation (drives Figure 14)."""

    op_id: int
    flavor: str
    observed: float
    low: float
    high: float
    complete: bool  #: whether the child stream had reached EOF
    units_at_event: float  #: work-meter reading when the check evaluated
    triggered: bool  #: would this evaluation trigger re-optimization?


class ReoptimizationSignal(Exception):
    """Raised by a CHECK whose range is violated; caught by the POP driver.

    ``observed`` is the row count at the moment of violation; ``complete``
    tells the driver whether it is an exact cardinality (child stream
    exhausted — LC flavors) or only a lower bound (eager flavors).
    """

    def __init__(
        self,
        check_op: PlanOp,
        observed: float,
        complete: bool,
        reason: str = "cardinality",
    ):
        super().__init__(
            f"check {check_op.op_id} violated ({reason}): observed={observed} "
            f"range={getattr(check_op, 'check_range', None)} complete={complete}"
        )
        self.check_op = check_op
        self.observed = observed
        self.complete = complete
        #: "cardinality" for range violations, "budget" for work-budget
        #: overruns (the §7 resource-check extension).
        self.reason = reason


class ExecutionContext:
    """Shared state of one execution attempt."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[dict[str, Any]] = None,
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        meter: Optional[WorkMeter] = None,
        dry_run_checks: bool = False,
        force_trigger_op_ids: Optional[set[int]] = None,
        disabled_check_op_ids: Optional[set[int]] = None,
        work_budget: Optional[float] = None,
        tracer=None,
        metrics=None,
        fault_injector=None,
        work_deadline: Optional[float] = None,
        memory=None,
        reservation=None,
        profiler=None,
        progress=None,
        cancel=None,
        wall_deadline: Optional[float] = None,
        batch_size: int = 0,
        snapshot=None,
    ):
        self.catalog = catalog
        self.params = params if params is not None else {}
        self.cost_params = cost_params
        self.cost_model = CostModel(cost_params)
        self.meter = meter if meter is not None else WorkMeter()
        #: Optional :class:`repro.obs.Tracer`; ``None`` disables tracing and
        #: reduces every instrumentation site to one comparison.
        self.tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry` (same contract).
        self.metrics = metrics
        #: Optional :class:`repro.obs.ProfileCollector`; armed by the
        #: runtime over the built operator tree, consulted by operator
        #: ``open``/``close`` behind single ``is None`` checks (same
        #: zero-overhead-off contract as the tracer).
        self.profiler = profiler
        #: Optional :class:`repro.obs.ProgressEstimator`; fed every
        #: checkpoint evaluation via :meth:`log_checkpoint`.
        self.progress = progress
        #: Span id of the enclosing ``pop.execute`` span, set by the driver;
        #: operator spans and checkpoint events attach to it.
        self.exec_span_id: Optional[int] = None
        #: When True, CHECK violations are logged, not raised (Fig. 14 mode).
        self.dry_run_checks = dry_run_checks
        #: CHECKs whose op_id is listed fire even inside their range
        #: (the "dummy re-optimization" of Fig. 12).
        self.force_trigger_op_ids = force_trigger_op_ids or set()
        #: CHECKs to skip entirely (risk experiments).
        self.disabled_check_op_ids = disabled_check_op_ids or set()
        #: When set, any CHECK also triggers once cumulative work exceeds
        #: this many units (§7: re-optimizing on resource overruns).
        self.work_budget = work_budget
        #: The single sanctioned fault-injection mount point: a
        #: :class:`repro.resilience.FaultInjector` (or ``None``).  The
        #: runtime arms it after building the operator tree; no other
        #: executor code may reference it (contract rule ``fault-isolation``).
        self.fault_injector = fault_injector
        #: Absolute work-unit deadline for this attempt (guard policy);
        #: exceeded at the plan root -> :class:`ExecutionTimeout`.
        self.work_deadline = work_deadline
        #: Optional :class:`repro.common.cancel.CancelToken`.  Checked in
        #: :meth:`Operator.emit` (one attribute read when absent) and at
        #: every :meth:`check_interrupt` site, so client disconnects and
        #: ``\\kill`` unwind mid-query through the normal teardown path.
        self.cancel = cancel
        #: Absolute wall-clock deadline for the whole *statement* (guard
        #: policy ``deadline_seconds``, shared across attempts); checked
        #: at :meth:`check_interrupt` sites ->
        #: :class:`~repro.common.errors.ExecutionTimeout`.
        self.wall_deadline = wall_deadline
        #: True when any interrupt source is armed: operators consult this
        #: once per blocking loop instead of re-deriving it per row.
        self.interruptible = cancel is not None or wall_deadline is not None
        #: Memory-pressure factor applied to every sort/hash/temp memory
        #: grant (1.0 = unconstrained).  Runtime state — mid-execution
        #: grant shrinks (e.g. chaos faults) lower it.
        self.mem_shrink = 1.0
        #: Optional :class:`repro.core.config.MemoryPolicy`.  ``None``
        #: keeps the legacy behavior: full grants, and a squeeze below one
        #: page hard-fails with :class:`ResourceExhausted`.
        self.memory = memory
        #: Optional :class:`repro.governor.Reservation` — this statement's
        #: slice of the shared budget.  Every grant is capped at its
        #: *current* size, so mid-query renegotiation takes effect at the
        #: next ``grant_pages`` call.
        self.reservation = reservation
        #: Rows per batch for the vectorized drain path.  ``0`` selects the
        #: classic row-at-a-time protocol; any positive value makes
        #: ``run_plan`` drive the root via :meth:`Operator.next_batch` and
        #: operators pull their children in batches of this size.  Row
        #: accounting, CHECK semantics, and meter totals are identical in
        #: both modes (see docs/vectorized.md); only poll granularity for
        #: cancellation/deadlines moves to batch boundaries.
        self.batch_size = batch_size
        #: Optional :class:`repro.txn.Snapshot` pinning this attempt to a
        #: commit epoch.  Scan operators cap themselves at the snapshot's
        #: per-table visible-row watermark (rids are positional, so
        #: ``rid < visible`` is exact); ``None`` means "read latest", the
        #: pre-transactional behavior.  Re-optimization rounds inside one
        #: statement reuse the same context, so every attempt of a POP
        #: statement sees one immutable snapshot.
        self.snapshot = snapshot
        self._spill = None
        #: Grants that came back smaller than requested: ``(category,
        #: requested, granted)`` triples, harvested into the attempt report.
        self.squeezed_grants: list[tuple[str, float, float]] = []
        #: All operator instances, registered at construction time, so the
        #: POP driver can harvest counters and materializations afterwards.
        self.operators: list[Operator] = []
        self.checkpoint_events: list[CheckpointEvent] = []
        self.rows_returned = 0

    def register(self, op: "Operator") -> None:
        self.operators.append(op)

    @property
    def spill_enabled(self) -> bool:
        """Whether squeezed operators may degrade to disk instead of
        raising (requires an attached :class:`MemoryPolicy` with
        ``spill_enabled``)."""
        return self.memory is not None and self.memory.spill_enabled

    @property
    def spill(self):
        """The attempt's :class:`repro.storage.spill.SpillManager`,
        created on first use (fully streaming attempts never touch disk)."""
        if self._spill is None:
            from repro.storage.spill import SpillManager

            self._spill = SpillManager(
                self.meter, self.cost_params, self.tracer, self.metrics
            )
        return self._spill

    def spill_summary(self) -> Optional[dict]:
        """This attempt's spill accounting, or ``None`` if nothing spilled
        (statistics survive :meth:`release_spill`)."""
        if self._spill is None:
            return None
        return self._spill.summary()

    def release_spill(self) -> None:
        """Delete every spill file of this attempt (idempotent).

        Called from ``run_plan``'s ``finally`` block — the success path
        and every abort path release their disk footprint here (contract
        rule ``spill-lifecycle``)."""
        if self._spill is not None:
            self._spill.close_all()

    def check_interrupt(self) -> None:
        """Raise if this statement was cancelled or out-ran its wall budget.

        The cooperative interrupt point: called from the plan-root drain
        loop, from every blocking operator phase (sort-run builds, hash
        builds, TEMP fills, merge drains), and from CHECK evaluations, so
        a cancel or a blown wall deadline unwinds within one row's worth
        of work and funnels through ``run_plan``'s teardown (operators
        closed, spill files released).  The cancel poll is one attribute
        read; the wall probe is one monotonic-clock sample, taken only
        when a wall deadline is armed.
        """
        cancel = self.cancel
        if cancel is not None and cancel.cancelled:
            raise ExecutionCancelled(
                f"statement cancelled: {cancel.reason or 'cancelled'}"
            )
        deadline = self.wall_deadline
        if deadline is not None and wall_clock() > deadline:
            raise ExecutionTimeout(
                f"wall-clock deadline exceeded ({deadline:.3f}s mark passed)"
            )

    def grant_pages(self, pages: float, category: str) -> float:
        """The effective memory grant for a ``pages``-page request.

        The grant is capped at the statement's current reservation (when
        the memory governor admitted it) and scaled by the legacy
        memory-pressure factor.  A squeezed grant degrades or dies
        depending on policy:

        * spilling enabled — the grant is floored at the policy's
          ``min_grant_pages`` and the operator spills the excess;
        * spilling disabled (or no :class:`MemoryPolicy`) — a grant below
          one page cannot make progress and raises
          :class:`~repro.common.errors.ResourceExhausted` (transient,
          retryable) carrying the category, requested pages, and effective
          grant.
        """
        effective = pages
        if self.reservation is not None:
            effective = min(effective, self.reservation.pages)
        if self.mem_shrink < 1.0:
            effective *= self.mem_shrink
        if effective >= pages:
            return pages
        if self.spill_enabled:
            granted = min(pages, max(self.memory.min_grant_pages, effective))
            self.squeezed_grants.append((category, pages, granted))
            if self.metrics is not None:
                self.metrics.inc("governor.grants_squeezed", category=category)
            if self.tracer is not None:
                self.tracer.event(
                    "governor.grant",
                    span=self.exec_span_id,
                    category=category,
                    requested_pages=pages,
                    granted_pages=granted,
                )
            return granted
        if effective < 1.0:
            raise ResourceExhausted(
                f"{category} memory grant shrunk below one page "
                f"(requested={pages:g} pages, effective grant={effective:.3f})",
                category=category,
                requested_pages=pages,
                granted_pages=effective,
            )
        return effective

    def apply_memory_pressure(self, factor: float) -> None:
        """Shrink this statement's memory mid-execution.

        With a governor reservation this is structured renegotiation —
        the reservation shrinks (never below the policy floor) and the
        next grant sees the smaller limit.  Without one it falls back to
        the legacy blunt ``mem_shrink`` factor.
        """
        if self.reservation is not None:
            self.reservation.shrink_to(self.reservation.pages * factor)
        else:
            self.mem_shrink = min(self.mem_shrink, factor)

    def log_checkpoint(self, event: CheckpointEvent) -> None:
        self.checkpoint_events.append(event)
        if self.progress is not None:
            self.progress.on_checkpoint(event)
        if self.metrics is not None:
            self.metrics.inc(
                "check.evaluations",
                flavor=event.flavor,
                triggered=event.triggered,
            )
        if self.tracer is not None:
            self.tracer.event(
                "check.evaluate",
                span=self.exec_span_id,
                op_id=event.op_id,
                flavor=event.flavor,
                observed=event.observed,
                low=event.low,
                high=event.high,
                complete=event.complete,
                triggered=event.triggered,
            )

    def finalize_operator_spans(self) -> None:
        """Close every operator's trace span with its final counters.

        A :class:`ReoptimizationSignal` unwinds the operator tree without
        calling ``close``; the driver invokes this after every attempt so
        interrupted operators still report rows-out and EOF state
        (``end_span`` is idempotent, so already-closed operators are safe).
        """
        if self.tracer is None:
            return
        for op in self.operators:
            op.end_span()


class Operator:
    """Base class for executor operators (Volcano-style iterators)."""

    def __init__(self, plan: PlanOp, ctx: ExecutionContext):
        self.plan = plan
        self.ctx = ctx
        self.rows_out = 0
        self.eof_seen = False
        self._open = False
        self._span_id: Optional[int] = None
        ctx.register(self)

    # -- protocol ---------------------------------------------------------

    def open(self) -> None:
        """Prepare for iteration (children recursively)."""
        self._open = True
        profiler = self.ctx.profiler
        if profiler is not None:
            profiler.on_open(self)
        tracer = self.ctx.tracer
        if tracer is not None:
            # Span covers open → close; u1-u0 includes the subtree's work
            # (children open/iterate inside this interval).
            self._span_id = tracer.start_span(
                f"op.{self.plan.KIND}",
                parent=self.ctx.exec_span_id,
                op_id=self.plan.op_id,
                op=self.plan.describe(),
                est_card=self.plan.est_card,
            )

    def next(self) -> Optional[tuple]:
        """The next output row, or ``None`` at end-of-stream."""
        raise NotImplementedError

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        """The next batch of 1..``max_rows`` output rows, or ``None`` at
        end-of-stream.

        Partial batches are legal anywhere in the stream, so consumers must
        not infer EOF from a short batch — only from ``None``.  The default
        implementation is a row-loop shim over :meth:`next`, which keeps
        every operator (including out-of-tree ones) correct under a
        batch-mode drain; native overrides exist purely for speed and must
        preserve row accounting exactly: ``rows_out`` counts individual
        rows, per-row meter charges are batched into arithmetically equal
        bulk charges, and CHECK/cancellation semantics are unchanged (see
        docs/vectorized.md).  Overrides return rows via
        :meth:`emit_batch` (contract rule ``batch-contract``).
        """
        out = []
        nxt = self.next
        while len(out) < max_rows:
            row = nxt()
            if row is None:
                break
            out.append(row)
        if not out:
            return None
        # Rows were already counted (and the cancel token polled) by the
        # per-row ``emit`` calls inside ``next`` — return them as-is.
        return out

    def close(self) -> None:
        """Release per-execution state.

        Must be idempotent and safe on a half-opened operator: the runtime
        closes every registered operator in a ``finally`` block, including
        after a mid-``open`` failure.  Overrides must delegate to
        ``super().close()`` and only touch attributes assigned in
        ``__init__`` (contract rule ``close-guarded``).
        """
        self._open = False
        profiler = self.ctx.profiler
        if profiler is not None:
            profiler.on_close(self)
        self.end_span()

    def end_span(self) -> None:
        """Finish this operator's trace span with final row counters."""
        tracer = self.ctx.tracer
        if tracer is not None and self._span_id is not None:
            tracer.end_span(
                self._span_id, rows_out=self.rows_out, eof=self.eof_seen
            )
            self._span_id = None

    # -- shared helpers ----------------------------------------------------

    def emit(self, row: tuple) -> tuple:
        """Count and return one output row.

        The universal per-row funnel doubles as the cheapest cancellation
        probe: with no token attached the added cost is one ``is None``
        check; with one attached, a tripped token stops the pipeline at
        the very next emitted row, wherever in the tree it happens.
        """
        cancel = self.ctx.cancel
        if cancel is not None and cancel.cancelled:
            raise ExecutionCancelled(
                f"statement cancelled: {cancel.reason or 'cancelled'}"
            )
        self.rows_out += 1
        return row

    def emit_batch(self, rows: list[tuple]) -> list[tuple]:
        """Count and return one output batch.

        The batch-mode analogue of :meth:`emit`: one cancellation probe per
        batch instead of per row (poll granularity is the *only* semantic
        difference between the modes), and ``rows_out`` advances by the
        individual row count so cardinality feedback harvested by POP is
        identical to row-at-a-time execution.
        """
        cancel = self.ctx.cancel
        if cancel is not None and cancel.cancelled:
            raise ExecutionCancelled(
                f"statement cancelled: {cancel.reason or 'cancelled'}"
            )
        self.rows_out += len(rows)
        return rows

    def finish(self) -> None:
        """Mark end-of-stream (rows_out is now the exact edge cardinality)."""
        self.eof_seen = True

    def require_open(self) -> None:
        if not self._open:
            raise ExecutionError(f"{type(self).__name__}.next() before open()")

    # -- harvesting hooks (overridden by materializing operators) ----------

    @property
    def materialized_rows(self) -> Optional[list[tuple]]:
        """Fully built intermediate result, if this operator holds one."""
        return None

    def profile_extras(self) -> dict:
        """Operator-kind detail counters for the profiler.

        Called once per attempt at profile finalization (never on the hot
        path); overrides report whatever makes this operator's behavior
        explainable — probe counts, build sizes, spill state.  Must be
        safe on a half-opened operator (read only ``__init__``-assigned
        attributes), like ``close``.
        """
        return {}

