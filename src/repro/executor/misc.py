"""Projection, RETURN, and the ECDC anti-join compensation operator."""

from __future__ import annotations

import operator as _operator
from collections import Counter
from typing import Optional

from repro.executor.base import ExecutionContext, Operator
from repro.plan.physical import AntiJoin, Project, Return


class ProjectExec(Operator):
    """Column projection/reordering."""

    def __init__(self, plan: Project, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        child_layout = plan.children[0].layout
        self._slots = [child_layout.slot(c) for c in plan.columns]
        # Compiled once: the batch path applies one C-level itemgetter per
        # row instead of rebuilding a generator expression per call.
        if len(self._slots) == 1:
            slot = self._slots[0]
            self._proj = lambda row: (row[slot],)
        else:
            self._proj = _operator.itemgetter(*self._slots)

    def open(self) -> None:
        super().open()
        self.child.open()

    def next(self) -> Optional[tuple]:
        self.require_open()
        row = self.child.next()
        if row is None:
            self.finish()
            return None
        self.ctx.meter.charge(self.ctx.cost_params.cpu_emit)
        return self.emit(tuple(row[s] for s in self._slots))

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        batch = self.child.next_batch(max_rows)
        if batch is None:
            self.finish()
            return None
        proj = self._proj
        out = [proj(row) for row in batch]
        self.ctx.meter.charge(len(out) * self.ctx.cost_params.cpu_emit)
        return self.emit_batch(out)


class HavingFilterExec(Operator):
    """Evaluates HAVING conjuncts over aggregation output rows."""

    _OPS = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, plan, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        layout = plan.children[0].layout
        self._checks = [
            (layout.slot(p.column), self._OPS[p.op], p.value)
            for p in plan.predicates
        ]

    def open(self) -> None:
        super().open()
        self.child.open()

    def _passes(self, row: tuple) -> bool:
        for slot, cmp, value in self._checks:
            cell = row[slot]
            if cell is None or not cmp(cell, value):
                return False
        return True

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        while True:
            row = self.child.next()
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_row)
            if self._passes(row):
                return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        p = self.ctx.cost_params
        passes = self._passes
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                self.finish()
                return None
            self.ctx.meter.charge(len(batch) * p.cpu_row)
            out = [row for row in batch if passes(row)]
            if out:
                return self.emit_batch(out)


class ReturnExec(Operator):
    """Root operator: streams rows to the application, honoring LIMIT.

    Counts returned rows in the execution context; the POP driver uses that
    count both to assert that non-compensating flavors never fire after rows
    were pipelined out, and to maintain the ECDC compensation multiset.
    """

    def __init__(self, plan: Return, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child

    def open(self) -> None:
        super().open()
        self.child.open()

    def next(self) -> Optional[tuple]:
        self.require_open()
        if self.plan.limit is not None and self.rows_out >= self.plan.limit:
            self.finish()
            return None
        row = self.child.next()
        if row is None:
            self.finish()
            return None
        self.ctx.rows_returned += 1
        return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        want = max_rows
        limit = self.plan.limit
        if limit is not None:
            # Cap the child request at the rows still owed so the total
            # child pull count matches row mode exactly (downstream CHECK
            # counters depend on it).
            remaining = limit - self.rows_out
            if remaining <= 0:
                self.finish()
                return None
            want = min(want, remaining)
        batch = self.child.next_batch(want)
        if batch is None:
            self.finish()
            return None
        self.ctx.rows_returned += len(batch)
        return self.emit_batch(batch)

    def profile_extras(self) -> dict:
        return {"limit": self.plan.limit}


class AntiJoinExec(Operator):
    """ECDC compensation: multiset-subtract previously returned rows.

    The driver supplies the compensation multiset (a Counter of rows already
    pipelined to the application during earlier execution attempts); each
    matching row consumes one count instead of being emitted, so the final
    result stream is an exact multiset difference (paper §3.3's anti-join on
    the rid side table, value-based here — see DESIGN.md).
    """

    def __init__(self, plan: AntiJoin, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self.compensated = 0  #: rows consumed by the compensation multiset
        self.compensation: Counter = getattr(ctx, "compensation", None) or Counter()

    def open(self) -> None:
        super().open()
        self.child.open()

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        while True:
            row = self.child.next()
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_hash_probe)
            if self.compensation.get(row, 0) > 0:
                self.compensation[row] -= 1
                self.compensated += 1
                continue
            return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        p = self.ctx.cost_params
        comp = self.compensation
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                self.finish()
                return None
            self.ctx.meter.charge(len(batch) * p.cpu_hash_probe)
            if comp:
                out = []
                for row in batch:
                    if comp.get(row, 0) > 0:
                        comp[row] -= 1
                        self.compensated += 1
                    else:
                        out.append(row)
            else:
                out = batch
            if out:
                return self.emit_batch(out)

    def profile_extras(self) -> dict:
        return {"compensated_rows": self.compensated}
