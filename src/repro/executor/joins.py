"""Join operators: nested-loop (index and rescan), hash, and sort-merge.

Under the memory governor, :class:`HashJoinExec` degrades Grace-style: a
build side that outgrows its grant is partitioned to spill files by a
deterministic key hash, the probe side is partitioned the same way, and
each partition pair is joined independently — recursing on partitions
that are still too big, and falling back to block nested-loop (the NLJN
flavor of the degradation ladder) past the recursion depth cap.
"""

from __future__ import annotations

import zlib
from itertools import islice
from typing import Optional

from repro.common.errors import ExecutionError
from repro.executor.base import ExecutionContext, Operator
from repro.executor.scans import IndexScanExec
from repro.expr.evaluate import compile_conjunction
from repro.plan.physical import HashJoin, MergeJoin, NLJoin


def _partition_of(key: tuple, depth: int, fanout: int) -> int:
    """Deterministic partition assignment for a join key.

    Uses ``crc32`` over the key's repr with a per-depth salt — Python's
    builtin ``hash`` is randomized per process for strings, which would
    make partition contents (and thus spill volume and row order)
    irreproducible across runs.
    """
    return zlib.crc32(f"{depth}:{key!r}".encode()) % fanout


class NLJoinExec(Operator):
    """Nested-loop join.

    ``index`` method: the inner is a correlated :class:`IndexScanExec`
    re-bound with the outer's join-key value for every outer row.
    ``rescan`` method: the inner is a :class:`TempExec` reset and re-read per
    outer row.
    """

    def __init__(self, plan: NLJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._outer_row: Optional[tuple] = None
        self._residual = None
        self._outer_key_slot: Optional[int] = None
        #: Batch mode: latched on outer EOF so a follow-up ``next_batch``
        #: call (after a partial batch was returned) never re-pulls an
        #: exhausted outer — a CHECK below would charge its EOF pull twice.
        self._outer_eof = False

    def open(self) -> None:
        super().open()
        self.outer.open()
        self.inner.open()
        plan = self.plan
        if plan.method == "index":
            if not isinstance(self.inner, IndexScanExec):
                raise ExecutionError("index NLJN requires a correlated index scan inner")
            corr = self.inner.plan.correlation
            if corr is None:
                raise ExecutionError("index NLJN inner has no correlation column")
            self._outer_key_slot = self.outer.plan.layout.slot(corr)
            # All predicates beyond the indexed one are residuals on the
            # concatenated row.
            residual = plan.join_predicates[1:]
        else:
            residual = plan.join_predicates
        self._residual = compile_conjunction(residual, plan.layout, self.ctx.params)
        self._outer_row = None
        self._outer_eof = False

    def _bind_outer(self, row: tuple) -> None:
        self._outer_row = row
        if self.plan.method == "index":
            assert self._outer_key_slot is not None
            self.inner.rebind(row[self._outer_key_slot])  # type: ignore[attr-defined]
        else:
            self.inner.reset()  # type: ignore[attr-defined]

    def _advance_outer(self) -> bool:
        row = self.outer.next()
        if row is None:
            self._outer_row = None
            return False
        self._bind_outer(row)
        return True

    def _advance_outer_batch(self) -> bool:
        if self._outer_eof:
            return False
        # Single-row outer pulls: the outer must advance one row at a time
        # (each row rebinds the inner), and ``next_batch(1)`` keeps the
        # outer's emitted-row counter exactly demand-driven like row mode.
        one = self.outer.next_batch(1)
        if not one:
            self._outer_row = None
            self._outer_eof = True
            return False
        self._bind_outer(one[0])
        return True

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._residual is not None
        p = self.ctx.cost_params
        while True:
            if self._outer_row is None:
                if not self._advance_outer():
                    self.finish()
                    return None
            inner_row = self.inner.next()
            if inner_row is None:
                self._outer_row = None
                continue
            joined = self._outer_row + inner_row
            if self._residual(joined):
                self.ctx.meter.charge(p.cpu_emit)
                return self.emit(joined)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        assert self._residual is not None
        residual = self._residual
        out: list[tuple] = []
        while len(out) < max_rows:
            if self._outer_row is None:
                if not self._advance_outer_batch():
                    break
            # Inner request capped at the rows still wanted so the output
            # never overshoots ``max_rows``; the inner is drained to EOF
            # per outer row across calls regardless of request size.
            inner_batch = self.inner.next_batch(max_rows - len(out))
            if inner_batch is None:
                self._outer_row = None
                continue
            orow = self._outer_row
            for inner_row in inner_batch:
                joined = orow + inner_row
                if residual(joined):
                    out.append(joined)
        if out:
            self.ctx.meter.charge(len(out) * self.ctx.cost_params.cpu_emit)
            return self.emit_batch(out)
        self.finish()
        return None

    def profile_extras(self) -> dict:
        return {"method": self.plan.method, "outer_rows": self.outer.rows_out}


class HashJoinExec(Operator):
    """Hash join: builds on the inner child, probes with the outer."""

    def __init__(self, plan: HashJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._table: dict = {}
        self._build_rows = 0
        self._build_complete = False
        self._matches: list[tuple] = []
        self._match_pos = 0
        self._outer_row: Optional[tuple] = None
        #: Batch mode: outer rows pulled but not yet probed (a batch is
        #: charged and buffered whole, then probed row by row so the
        #: match-serving state machine stays identical to row mode).
        self._outer_pending: list[tuple] = []
        self._pending_pos = 0
        #: Batch mode: latched on outer EOF (see NLJoinExec._outer_eof).
        self._outer_eof = False
        self._outer_slots: list[int] = []
        self._inner_slots: list[int] = []
        self.spilled = False
        self._result_iter = None

    def _key_slots(self) -> None:
        outer_tables = self.plan.outer.properties.tables
        self._outer_slots = []
        self._inner_slots = []
        for pred in self.plan.join_predicates:
            if pred.left.table in outer_tables:
                outer_col, inner_col = pred.left, pred.right
            else:
                outer_col, inner_col = pred.right, pred.left
            self._outer_slots.append(self.plan.outer.layout.slot(outer_col))
            self._inner_slots.append(self.plan.inner.layout.slot(inner_col))

    def open(self) -> None:
        super().open()
        self._key_slots()
        p = self.ctx.cost_params
        if self.ctx.spill_enabled:
            self._open_grace()
            return
        # Build phase: drain the inner completely (a materialization of
        # sorts, though not one the prototype reuses — matching the paper's
        # "current implementation does not reuse hash join builds").
        self.inner.open()
        self._table = {}
        interruptible = self.ctx.interruptible
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            # Vectorized build drain: per-batch poll and one bulk
            # cpu_hash_build charge per batch (equal totals to the loop
            # below, which charges per drained row).
            while True:
                batch = self.inner.next_batch(batch_size)
                if batch is None:
                    break
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_hash_build)
                for row in batch:
                    key = tuple(row[s] for s in self._inner_slots)
                    if any(k is None for k in key):
                        continue
                    self._table.setdefault(key, []).append(row)
                    self._build_rows += 1
        else:
            while True:
                row = self.inner.next()
                if row is None:
                    break
                # Blocking build phase: poll before emit() ever sees a row.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_hash_build)
                key = tuple(row[s] for s in self._inner_slots)
                if any(k is None for k in key):
                    continue
                self._table.setdefault(key, []).append(row)
                self._build_rows += 1
        self._build_complete = True
        self._charge_spill(self._build_rows)
        self.outer.open()

    def close(self) -> None:
        """Release the build table and pending matches (idempotent)."""
        super().close()
        self._table = {}
        self._matches = []
        self._match_pos = 0
        self._outer_pending = []
        self._pending_pos = 0
        self._result_iter = None

    def _charge_spill(self, build_rows: int) -> None:
        """Charge the multi-stage partitioning I/O the cost model predicts.

        Deliberately evaluated *after* the build side is fully
        materialized, with a fresh ``grant_pages`` call: a grant that
        shrank mid-build is seen here, so an overcommitted build is at
        least priced and reported instead of passing silently (the
        pre-spill stopgap; with a memory policy attached the same
        condition triggers a real spill in :meth:`_open_grace`).
        """
        cm = self.ctx.cost_model
        p = self.ctx.cost_params
        build_pages = cm.pages_for(build_rows)
        grant = self.ctx.grant_pages(p.hash_mem_pages, "hash")
        if build_pages > grant:
            if self.ctx.metrics is not None:
                self.ctx.metrics.inc("executor.hash_overcommit")
            if self.ctx.tracer is not None:
                self.ctx.tracer.event(
                    "hash.overcommit",
                    span=self.ctx.exec_span_id,
                    op_id=self.plan.op_id,
                    build_pages=build_pages,
                    granted_pages=grant,
                )
            # Approximate the model's spill term with the build contribution
            # now; the probe contribution is charged per probe row below.
            self.ctx.meter.charge(2.0 * build_pages * p.io_page)
            self._probe_spill_per_row = 2.0 * p.io_page / p.rows_per_page
        else:
            self._probe_spill_per_row = 0.0

    # ------------------------------------------------------- governed build

    def _capacity_rows(self, grant: float) -> int:
        return max(1, int(grant * self.ctx.cost_params.rows_per_page))

    def _build_key(self, row: tuple) -> tuple:
        return tuple(row[s] for s in self._inner_slots)

    def _open_grace(self) -> None:
        """Governed build: in-memory while it fits, Grace partitions when
        it does not — and re-checked once the build side is complete, so a
        reservation renegotiated mid-build cannot overcommit silently."""
        p = self.ctx.cost_params
        fanout = self.ctx.memory.spill_partitions
        grant = self.ctx.grant_pages(p.hash_mem_pages, "hash")
        capacity = self._capacity_rows(grant)
        self.inner.open()
        self._table = {}
        build_parts = None
        interruptible = self.ctx.interruptible
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.inner.next_batch(batch_size)
                if batch is None:
                    break
                # A kill mid-Grace-build must not leak the partition files
                # it already created: raising here unwinds into run_plan's
                # teardown, which closes this operator and releases the
                # spill manager exactly once.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_hash_build)
                for row in batch:
                    key = self._build_key(row)
                    if any(k is None for k in key):
                        continue
                    self._build_rows += 1
                    if build_parts is None:
                        self._table.setdefault(key, []).append(row)
                        if self._build_rows > capacity:
                            build_parts = self._spill_table(fanout)
                    else:
                        build_parts[_partition_of(key, 0, fanout)].append(row)
        else:
            while True:
                row = self.inner.next()
                if row is None:
                    break
                # A kill mid-Grace-build must not leak the partition files
                # it already created: raising here unwinds into run_plan's
                # teardown, which closes this operator and releases the
                # spill manager exactly once.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_hash_build)
                key = self._build_key(row)
                if any(k is None for k in key):
                    continue
                self._build_rows += 1
                if build_parts is None:
                    self._table.setdefault(key, []).append(row)
                    if self._build_rows > capacity:
                        build_parts = self._spill_table(fanout)
                else:
                    build_parts[_partition_of(key, 0, fanout)].append(row)
        self._build_complete = True
        # Mid-build pressure re-check: the grant may have shrunk while the
        # build was draining; a table that no longer fits spills now.
        if build_parts is None and self._build_rows > 0:
            grant_now = self.ctx.grant_pages(p.hash_mem_pages, "hash")
            if self._build_rows > self._capacity_rows(grant_now):
                build_parts = self._spill_table(fanout)
                capacity = self._capacity_rows(grant_now)
        self._probe_spill_per_row = 0.0
        self.outer.open()
        if build_parts is not None:
            self.spilled = True
            for part in build_parts:
                part.close()
            self._result_iter = self._grace_probe(build_parts, fanout, capacity)

    def _spill_table(self, fanout: int):
        """Move the in-memory build table into partition spill files."""
        parts = [
            self.ctx.spill.create("hash", f"hash-build-p{i}") for i in range(fanout)
        ]
        for key, rows in self._table.items():
            part = parts[_partition_of(key, 0, fanout)]
            for row in rows:
                part.append(row)
        self._table = {}
        return parts

    def _grace_probe(self, build_parts, fanout: int, capacity: int):
        """Partition the probe side, then join partition pairs."""
        p = self.ctx.cost_params
        probe_parts = [
            self.ctx.spill.create("hash", f"hash-probe-p{i}") for i in range(fanout)
        ]
        interruptible = self.ctx.interruptible
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.outer.next_batch(batch_size)
                if batch is None:
                    break
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_hash_probe)
                for row in batch:
                    key = tuple(row[s] for s in self._outer_slots)
                    if any(k is None for k in key):
                        continue
                    probe_parts[_partition_of(key, 0, fanout)].append(row)
        else:
            while True:
                row = self.outer.next()
                if row is None:
                    break
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_hash_probe)
                key = tuple(row[s] for s in self._outer_slots)
                if any(k is None for k in key):
                    continue
                probe_parts[_partition_of(key, 0, fanout)].append(row)
        for part in probe_parts:
            part.close()
        for build, probe in zip(build_parts, probe_parts):
            yield from self._join_partition(build, probe, 1, fanout, capacity)

    def _join_partition(self, build, probe, depth: int, fanout: int, capacity: int):
        """Join one build/probe partition pair, recursing or degrading."""
        if build.row_count == 0 or probe.row_count == 0:
            build.delete()
            probe.delete()
            return
        if build.row_count <= capacity:
            yield from self._hash_partition(build, probe)
        elif depth <= self.ctx.memory.max_recursion_depth:
            # Re-partition both sides with a depth-salted hash and recurse.
            sub_build = [
                self.ctx.spill.create("hash", f"{build.label}.{i}") for i in range(fanout)
            ]
            sub_probe = [
                self.ctx.spill.create("hash", f"{probe.label}.{i}") for i in range(fanout)
            ]
            for row in build.rows():
                key = self._build_key(row)
                sub_build[_partition_of(key, depth, fanout)].append(row)
            for row in probe.rows():
                key = tuple(row[s] for s in self._outer_slots)
                sub_probe[_partition_of(key, depth, fanout)].append(row)
            build.delete()
            probe.delete()
            for b, pr in zip(sub_build, sub_probe):
                b.close()
                pr.close()
                yield from self._join_partition(b, pr, depth + 1, fanout, capacity)
            return
        else:
            # Degradation ladder, last rung before the guard's safe plan:
            # block nested-loop within the partition (NLJN flavor) — the
            # build is processed one grant-sized chunk at a time, the probe
            # file rescanned per chunk.
            yield from self._block_join(build, probe, capacity)
        build.delete()
        probe.delete()

    def _hash_partition(self, build, probe):
        """Classic in-memory hash join of one partition pair."""
        table: dict = {}
        for row in build.rows():
            table.setdefault(self._build_key(row), []).append(row)
        slots = self._outer_slots
        for prow in probe.rows():
            for brow in table.get(tuple(prow[s] for s in slots), ()):
                yield prow + brow

    def _block_join(self, build, probe, capacity: int):
        chunk: list[tuple] = []
        for row in build.rows():
            chunk.append(row)
            if len(chunk) >= capacity:
                yield from self._probe_chunk(chunk, probe)
                chunk = []
        if chunk:
            yield from self._probe_chunk(chunk, probe)

    def _probe_chunk(self, chunk: list[tuple], probe):
        table: dict = {}
        for row in chunk:
            table.setdefault(self._build_key(row), []).append(row)
        slots = self._outer_slots
        for prow in probe.rows():
            for brow in table.get(tuple(prow[s] for s in slots), ()):
                yield prow + brow

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        if self._result_iter is not None:
            row = next(self._result_iter, None)
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_emit)
            return self.emit(row)
        while True:
            if self._match_pos < len(self._matches):
                inner_row = self._matches[self._match_pos]
                self._match_pos += 1
                assert self._outer_row is not None
                self.ctx.meter.charge(p.cpu_emit)
                return self.emit(self._outer_row + inner_row)
            row = self.outer.next()
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_hash_probe + self._probe_spill_per_row)
            key = tuple(row[s] for s in self._outer_slots)
            if any(k is None for k in key):
                continue
            self._outer_row = row
            self._matches = self._table.get(key, [])
            self._match_pos = 0

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        p = self.ctx.cost_params
        if self._result_iter is not None:
            out = list(islice(self._result_iter, max_rows))
            if not out:
                self.finish()
                return None
            self.ctx.meter.charge(len(out) * p.cpu_emit)
            return self.emit_batch(out)
        out: list[tuple] = []
        table = self._table
        slots = self._outer_slots
        probe_charge = p.cpu_hash_probe + self._probe_spill_per_row
        while len(out) < max_rows:
            if self._match_pos < len(self._matches):
                orow = self._outer_row
                assert orow is not None
                mp = self._match_pos
                take = min(max_rows - len(out), len(self._matches) - mp)
                out.extend(orow + m for m in self._matches[mp:mp + take])
                self._match_pos = mp + take
                continue
            if self._pending_pos < len(self._outer_pending):
                row = self._outer_pending[self._pending_pos]
                self._pending_pos += 1
                key = tuple(row[s] for s in slots)
                if any(k is None for k in key):
                    continue
                self._outer_row = row
                self._matches = table.get(key, [])
                self._match_pos = 0
                continue
            if self._outer_eof:
                break
            # Outer request capped at the rows still wanted: the pull is
            # demand-driven like row mode up to one batch of slack.
            batch = self.outer.next_batch(max_rows - len(out))
            if batch is None:
                self._outer_eof = True
                break
            self.ctx.meter.charge(len(batch) * probe_charge)
            self._outer_pending = batch
            self._pending_pos = 0
        if out:
            self.ctx.meter.charge(len(out) * p.cpu_emit)
            return self.emit_batch(out)
        self.finish()
        return None

    def profile_extras(self) -> dict:
        return {
            "build_rows": self._build_rows,
            "build_complete": self._build_complete,
            "probe_rows": self.outer.rows_out,
            "spilled": self.spilled,
        }


class MergeJoinExec(Operator):
    """Sort-merge join over two key-ordered inputs.

    Handles duplicate keys on both sides (cross product within key groups).
    """

    def __init__(self, plan: MergeJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._outer_slots: list[int] = []
        self._inner_slots: list[int] = []
        self._output: list[tuple] = []
        self._pos = 0

    def _key_slots(self) -> None:
        outer_tables = self.plan.outer.properties.tables
        self._outer_slots = []
        self._inner_slots = []
        for pred in self.plan.join_predicates:
            if pred.left.table in outer_tables:
                outer_col, inner_col = pred.left, pred.right
            else:
                outer_col, inner_col = pred.right, pred.left
            self._outer_slots.append(self.plan.outer.layout.slot(outer_col))
            self._inner_slots.append(self.plan.inner.layout.slot(inner_col))

    def _drain(self, child: Operator) -> list[tuple]:
        interruptible = self.ctx.interruptible
        rows: list[tuple] = []
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = child.next_batch(batch_size)
                if batch is None:
                    return rows
                rows.extend(batch)
                # Blocking merge build: poll per drained batch.
                if interruptible:
                    self.ctx.check_interrupt()
        while True:
            row = child.next()
            if row is None:
                return rows
            rows.append(row)
            # Blocking merge build: poll per drained row.
            if interruptible:
                self.ctx.check_interrupt()

    def open(self) -> None:
        super().open()
        self._key_slots()
        p = self.ctx.cost_params
        self.outer.open()
        self.inner.open()
        left = self._drain(self.outer)
        right = self._drain(self.inner)
        self.ctx.meter.charge((len(left) + len(right)) * p.cpu_row)
        # Merge the two sorted inputs group by group.
        self._output = []
        i = j = 0
        lslots, rslots = self._outer_slots, self._inner_slots
        while i < len(left) and j < len(right):
            lkey = tuple(left[i][s] for s in lslots)
            rkey = tuple(right[j][s] for s in rslots)
            if any(k is None for k in lkey):
                i += 1
                continue
            if any(k is None for k in rkey):
                j += 1
                continue
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                i_end = i
                while i_end < len(left) and tuple(left[i_end][s] for s in lslots) == lkey:
                    i_end += 1
                j_end = j
                while j_end < len(right) and tuple(right[j_end][s] for s in rslots) == rkey:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        self._output.append(left[li] + right[rj])
                i, j = i_end, j_end
        self._pos = 0

    def next(self) -> Optional[tuple]:
        self.require_open()
        if self._pos < len(self._output):
            row = self._output[self._pos]
            self._pos += 1
            self.ctx.meter.charge(self.ctx.cost_params.cpu_emit)
            return self.emit(row)
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        output = self._output
        pos = self._pos
        if pos >= len(output):
            self.finish()
            return None
        take = min(max_rows, len(output) - pos)
        self._pos = pos + take
        self.ctx.meter.charge(take * self.ctx.cost_params.cpu_emit)
        return self.emit_batch(output[pos:pos + take])

    def close(self) -> None:
        """Release the merged output buffer (idempotent)."""
        super().close()
        self._output = []
        self._pos = 0

    def profile_extras(self) -> dict:
        # Captured at first close, before the buffer above is released.
        return {
            "merged_rows": len(self._output),
            "outer_rows": self.outer.rows_out,
            "inner_rows": self.inner.rows_out,
        }
