"""Join operators: nested-loop (index and rescan), hash, and sort-merge."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ExecutionError
from repro.executor.base import ExecutionContext, Operator
from repro.executor.scans import IndexScanExec
from repro.expr.evaluate import compile_conjunction
from repro.plan.physical import HashJoin, MergeJoin, NLJoin


class NLJoinExec(Operator):
    """Nested-loop join.

    ``index`` method: the inner is a correlated :class:`IndexScanExec`
    re-bound with the outer's join-key value for every outer row.
    ``rescan`` method: the inner is a :class:`TempExec` reset and re-read per
    outer row.
    """

    def __init__(self, plan: NLJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._outer_row: Optional[tuple] = None
        self._residual = None
        self._outer_key_slot: Optional[int] = None

    def open(self) -> None:
        super().open()
        self.outer.open()
        self.inner.open()
        plan = self.plan
        if plan.method == "index":
            if not isinstance(self.inner, IndexScanExec):
                raise ExecutionError("index NLJN requires a correlated index scan inner")
            corr = self.inner.plan.correlation
            if corr is None:
                raise ExecutionError("index NLJN inner has no correlation column")
            self._outer_key_slot = self.outer.plan.layout.slot(corr)
            # All predicates beyond the indexed one are residuals on the
            # concatenated row.
            residual = plan.join_predicates[1:]
        else:
            residual = plan.join_predicates
        self._residual = compile_conjunction(residual, plan.layout, self.ctx.params)
        self._outer_row = None

    def _advance_outer(self) -> bool:
        row = self.outer.next()
        if row is None:
            self._outer_row = None
            return False
        self._outer_row = row
        if self.plan.method == "index":
            assert self._outer_key_slot is not None
            self.inner.rebind(row[self._outer_key_slot])  # type: ignore[attr-defined]
        else:
            self.inner.reset()  # type: ignore[attr-defined]
        return True

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._residual is not None
        p = self.ctx.cost_params
        while True:
            if self._outer_row is None:
                if not self._advance_outer():
                    self.finish()
                    return None
            inner_row = self.inner.next()
            if inner_row is None:
                self._outer_row = None
                continue
            joined = self._outer_row + inner_row
            if self._residual(joined):
                self.ctx.meter.charge(p.cpu_emit)
                return self.emit(joined)


class HashJoinExec(Operator):
    """Hash join: builds on the inner child, probes with the outer."""

    def __init__(self, plan: HashJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._table: dict = {}
        self._build_rows = 0
        self._build_complete = False
        self._matches: list[tuple] = []
        self._match_pos = 0
        self._outer_row: Optional[tuple] = None
        self._outer_slots: list[int] = []
        self._inner_slots: list[int] = []

    def _key_slots(self) -> None:
        outer_tables = self.plan.outer.properties.tables
        self._outer_slots = []
        self._inner_slots = []
        for pred in self.plan.join_predicates:
            if pred.left.table in outer_tables:
                outer_col, inner_col = pred.left, pred.right
            else:
                outer_col, inner_col = pred.right, pred.left
            self._outer_slots.append(self.plan.outer.layout.slot(outer_col))
            self._inner_slots.append(self.plan.inner.layout.slot(inner_col))

    def open(self) -> None:
        super().open()
        self._key_slots()
        p = self.ctx.cost_params
        # Build phase: drain the inner completely (a materialization of
        # sorts, though not one the prototype reuses — matching the paper's
        # "current implementation does not reuse hash join builds").
        self.inner.open()
        self._table = {}
        while True:
            row = self.inner.next()
            if row is None:
                break
            self.ctx.meter.charge(p.cpu_hash_build)
            key = tuple(row[s] for s in self._inner_slots)
            if any(k is None for k in key):
                continue
            self._table.setdefault(key, []).append(row)
            self._build_rows += 1
        self._build_complete = True
        self._charge_spill(self._build_rows)
        self.outer.open()

    def close(self) -> None:
        """Release the build table and pending matches (idempotent)."""
        super().close()
        self._table = {}
        self._matches = []
        self._match_pos = 0

    def _charge_spill(self, build_rows: int) -> None:
        """Charge the multi-stage partitioning I/O the cost model predicts."""
        cm = self.ctx.cost_model
        p = self.ctx.cost_params
        build_pages = cm.pages_for(build_rows)
        if build_pages > self.ctx.grant_pages(p.hash_mem_pages, "hash"):
            # Approximate the model's spill term with the build contribution
            # now; the probe contribution is charged per probe row below.
            self.ctx.meter.charge(2.0 * build_pages * p.io_page)
            self._probe_spill_per_row = 2.0 * p.io_page / p.rows_per_page
        else:
            self._probe_spill_per_row = 0.0

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        while True:
            if self._match_pos < len(self._matches):
                inner_row = self._matches[self._match_pos]
                self._match_pos += 1
                assert self._outer_row is not None
                self.ctx.meter.charge(p.cpu_emit)
                return self.emit(self._outer_row + inner_row)
            row = self.outer.next()
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_hash_probe + self._probe_spill_per_row)
            key = tuple(row[s] for s in self._outer_slots)
            if any(k is None for k in key):
                continue
            self._outer_row = row
            self._matches = self._table.get(key, [])
            self._match_pos = 0


class MergeJoinExec(Operator):
    """Sort-merge join over two key-ordered inputs.

    Handles duplicate keys on both sides (cross product within key groups).
    """

    def __init__(self, plan: MergeJoin, ctx: ExecutionContext, outer: Operator, inner: Operator):
        super().__init__(plan, ctx)
        self.outer = outer
        self.inner = inner
        self._outer_slots: list[int] = []
        self._inner_slots: list[int] = []
        self._output: list[tuple] = []
        self._pos = 0

    def _key_slots(self) -> None:
        outer_tables = self.plan.outer.properties.tables
        self._outer_slots = []
        self._inner_slots = []
        for pred in self.plan.join_predicates:
            if pred.left.table in outer_tables:
                outer_col, inner_col = pred.left, pred.right
            else:
                outer_col, inner_col = pred.right, pred.left
            self._outer_slots.append(self.plan.outer.layout.slot(outer_col))
            self._inner_slots.append(self.plan.inner.layout.slot(inner_col))

    @staticmethod
    def _drain(child: Operator) -> list[tuple]:
        rows = []
        while True:
            row = child.next()
            if row is None:
                return rows
            rows.append(row)

    def open(self) -> None:
        super().open()
        self._key_slots()
        p = self.ctx.cost_params
        self.outer.open()
        self.inner.open()
        left = self._drain(self.outer)
        right = self._drain(self.inner)
        self.ctx.meter.charge((len(left) + len(right)) * p.cpu_row)
        # Merge the two sorted inputs group by group.
        self._output = []
        i = j = 0
        lslots, rslots = self._outer_slots, self._inner_slots
        while i < len(left) and j < len(right):
            lkey = tuple(left[i][s] for s in lslots)
            rkey = tuple(right[j][s] for s in rslots)
            if any(k is None for k in lkey):
                i += 1
                continue
            if any(k is None for k in rkey):
                j += 1
                continue
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                i_end = i
                while i_end < len(left) and tuple(left[i_end][s] for s in lslots) == lkey:
                    i_end += 1
                j_end = j
                while j_end < len(right) and tuple(right[j_end][s] for s in rslots) == rkey:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        self._output.append(left[li] + right[rj])
                i, j = i_end, j_end
        self._pos = 0

    def next(self) -> Optional[tuple]:
        self.require_open()
        if self._pos < len(self._output):
            row = self._output[self._pos]
            self._pos += 1
            self.ctx.meter.charge(self.ctx.cost_params.cpu_emit)
            return self.emit(row)
        self.finish()
        return None

    def close(self) -> None:
        """Release the merged output buffer (idempotent)."""
        super().close()
        self._output = []
        self._pos = 0
