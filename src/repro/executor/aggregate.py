"""Hash aggregation (GROUP BY) and DISTINCT."""

from __future__ import annotations

from typing import Any, Optional

from repro.executor.base import ExecutionContext, Operator
from repro.plan.physical import Distinct, GroupBy


class _AggState:
    """Accumulator for one group's aggregates."""

    __slots__ = ("counts", "sums", "mins", "maxs")

    def __init__(self, n: int):
        self.counts = [0] * n
        self.sums: list[Any] = [0] * n
        self.mins: list[Any] = [None] * n
        self.maxs: list[Any] = [None] * n

    def update(self, i: int, value: Any) -> None:
        if value is None:
            return
        self.counts[i] += 1
        self.sums[i] += value if not isinstance(value, str) else 0
        if self.mins[i] is None or value < self.mins[i]:
            self.mins[i] = value
        if self.maxs[i] is None or value > self.maxs[i]:
            self.maxs[i] = value

    def result(self, i: int, func: str) -> Any:
        if func == "count":
            return self.counts[i]
        if self.counts[i] == 0:
            return None
        if func == "sum":
            return self.sums[i]
        if func == "avg":
            return self.sums[i] / self.counts[i]
        if func == "min":
            return self.mins[i]
        if func == "max":
            return self.maxs[i]
        raise ValueError(f"unknown aggregate {func!r}")


class GroupByExec(Operator):
    """Blocking hash aggregation.

    With no group keys, produces exactly one row (scalar aggregation), even
    over empty input — SQL semantics.
    """

    def __init__(self, plan: GroupBy, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._results: Optional[list[tuple]] = None
        self._pos = 0

    def open(self) -> None:
        super().open()
        self.child.open()
        plan = self.plan
        p = self.ctx.cost_params
        child_layout = plan.children[0].layout
        key_slots = [child_layout.slot(k) for k in plan.group_keys]
        agg_slots = [
            None if a.argument is None else child_layout.slot(a.argument)
            for a in plan.aggregates
        ]
        groups: dict[tuple, tuple[_AggState, int]] = {}
        counts_star: dict[tuple, int] = {}
        n_aggs = len(plan.aggregates)
        interruptible = self.ctx.interruptible
        batch_size = self.ctx.batch_size

        def consume(row: tuple) -> None:
            key = tuple(row[s] for s in key_slots)
            state_entry = groups.get(key)
            if state_entry is None:
                state = _AggState(n_aggs)
                groups[key] = (state, 0)
            else:
                state = state_entry[0]
            counts_star[key] = counts_star.get(key, 0) + 1
            for i, slot in enumerate(agg_slots):
                if slot is None:
                    continue
                state.update(i, row[slot])

        if batch_size > 0:
            while True:
                batch = self.child.next_batch(batch_size)
                if batch is None:
                    break
                # Blocking aggregation drain: poll per consumed batch.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_agg)
                for row in batch:
                    consume(row)
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                # Blocking aggregation drain: poll per consumed row.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_agg)
                consume(row)
        if not groups and not plan.group_keys:
            groups[()] = (_AggState(n_aggs), 0)
            counts_star[()] = 0
        results = []
        for key, (state, _) in groups.items():
            values = []
            for i, agg in enumerate(plan.aggregates):
                if agg.func == "count" and agg.argument is None:
                    values.append(counts_star[key])
                else:
                    values.append(state.result(i, agg.func))
            self.ctx.meter.charge(p.cpu_emit)
            results.append(key + tuple(values))
        self._results = results
        self._pos = 0

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._results is not None
        if self._pos < len(self._results):
            row = self._results[self._pos]
            self._pos += 1
            return self.emit(row)
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        assert self._results is not None
        results = self._results
        pos = self._pos
        if pos >= len(results):
            self.finish()
            return None
        take = min(max_rows, len(results) - pos)
        self._pos = pos + take
        # Result rows were charged (cpu_emit) when built at open time.
        return self.emit_batch(results[pos:pos + take])

    def profile_extras(self) -> dict:
        return {
            "groups": len(self._results) if self._results is not None else 0,
            "aggregates": len(self.plan.aggregates),
        }


class DistinctExec(Operator):
    """Streaming hash-based duplicate elimination."""

    def __init__(self, plan: Distinct, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._seen: set = set()

    def open(self) -> None:
        super().open()
        self.child.open()
        self._seen = set()

    def close(self) -> None:
        """Release the duplicate-tracking set (idempotent)."""
        super().close()
        self._seen = set()

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        while True:
            row = self.child.next()
            if row is None:
                self.finish()
                return None
            self.ctx.meter.charge(p.cpu_hash_probe)
            if row in self._seen:
                # Duplicate-heavy streams can consume many rows between
                # emits; poll so cancellation stays within one row's work.
                if self.ctx.interruptible:
                    self.ctx.check_interrupt()
                continue
            self._seen.add(row)
            self.ctx.meter.charge(p.cpu_emit)
            return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        p = self.ctx.cost_params
        seen = self._seen
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                self.finish()
                return None
            self.ctx.meter.charge(len(batch) * p.cpu_hash_probe)
            out = []
            for row in batch:
                if row in seen:
                    continue
                seen.add(row)
                out.append(row)
            if out:
                self.ctx.meter.charge(len(out) * p.cpu_emit)
                return self.emit_batch(out)
            # Duplicate-heavy streams can consume whole batches without an
            # emit; poll so cancellation stays within one batch's work.
            if self.ctx.interruptible:
                self.ctx.check_interrupt()

    def profile_extras(self) -> dict:
        # Captured at first close, before the set above is released.
        return {"distinct_keys": len(self._seen)}
