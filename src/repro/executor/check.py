"""CHECK and BUFCHECK: the paper's checkpoint operators (Fig. 10).

CHECK has no relational semantics.  It counts rows from its child and raises
:class:`ReoptimizationSignal` when the count leaves the check range:

* ``count > high`` — raised immediately (the cardinality is already proven
  too large; ``observed`` is a lower bound unless the child also hit EOF);
* ``count < low`` at end-of-stream — raised with an exact cardinality.

Above a materialization point, checking collapses to a single evaluation
after the materialization completes (the paper's optimization), because the
child's full count is already known when ``open`` returns.

BUFCHECK implements ECB's valve: rows are buffered until the check's fate is
decided, so no row escapes to the parent before a potential
re-optimization — that is what makes ECB safe in pipelined plans.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.executor.base import (
    CheckpointEvent,
    ExecutionContext,
    Operator,
    ReoptimizationSignal,
)
from repro.plan.physical import BufCheck, Check


class CheckExec(Operator):
    """The plain CHECK operator (LC / LCEM / ECWC / ECDC flavors)."""

    def __init__(self, plan: Check, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self.count = 0
        self._evaluated_once = False
        self._disabled = False
        self._forced = False

    def open(self) -> None:
        super().open()
        self.child.open()
        self.count = 0
        self._evaluated_once = False
        op_id = self.plan.op_id
        self._disabled = op_id in self.ctx.disabled_check_op_ids
        self._forced = op_id in self.ctx.force_trigger_op_ids
        # Materialization-point optimization: the child already knows its
        # exact cardinality — evaluate the check once, right now.
        mat = self.child.materialized_rows
        if mat is not None and not self._disabled:
            self.count = len(mat)
            self._evaluate(complete=True)
            self._evaluated_once = True

    def reset(self) -> None:
        """Restart iteration when checking a rescanned TEMP (NLJN inner).

        The check itself already evaluated once when the materialization
        completed (``open``); rescans are pass-through.
        """
        self.child.reset()  # type: ignore[attr-defined]
        self._evaluated_once = True

    def _evaluate(self, complete: bool) -> None:
        rng = self.plan.check_range
        triggered = self.count > rng.high or (complete and self.count < rng.low)
        if self._forced:
            triggered = True
        self.ctx.log_checkpoint(
            CheckpointEvent(
                op_id=self.plan.op_id or -1,
                flavor=self.plan.flavor,
                observed=self.count,
                low=rng.low,
                high=rng.high,
                complete=complete,
                units_at_event=self.ctx.meter.snapshot(),
                triggered=triggered,
            )
        )
        if triggered and not self.ctx.dry_run_checks:
            raise ReoptimizationSignal(self.plan, self.count, complete)

    def next(self) -> Optional[tuple]:
        self.require_open()
        # CHECK points are the plan's designated reactive sites (paper §3):
        # the same place a cardinality violation is detected is where a
        # cancel or wall-clock deadline is honored.
        if self.ctx.interruptible:
            self.ctx.check_interrupt()
        row = self.child.next()
        self.ctx.meter.charge(self.ctx.cost_params.cpu_check, "check")
        if row is None:
            self.finish()
            if not self._disabled and not self._evaluated_once:
                self._evaluate(complete=True)
                self._evaluated_once = True
            return None
        self.count += 1
        if (
            not self._disabled
            and not self._evaluated_once
            and self.count > self.plan.check_range.high
        ):
            self._evaluate(complete=False)
            self._evaluated_once = True  # dry-run mode: log only once
        budget = self.ctx.work_budget
        if (
            budget is not None
            and not self._disabled
            and not self.ctx.dry_run_checks
            and self.ctx.meter.units > budget
            # Without compensation, a trigger is only safe before any row
            # has been pipelined to the application.
            and (self.ctx.rows_returned == 0 or self.plan.flavor == "ECDC")
        ):
            # §7 extension: the statement blew its work budget — whatever
            # knowledge and intermediates exist, try a better plan now.
            raise ReoptimizationSignal(
                self.plan, self.count, complete=False, reason="budget"
            )
        return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        """Batch drain with row-exact CHECK semantics.

        The counter advances by individual rows and the mid-stream
        evaluation happens at the exact count where the row loop evaluates
        it (the first count above ``high``), so ``observed`` — and with it
        the harvested feedback and any re-optimized plan — is identical to
        row mode.  To keep the *child's* emitted-row counter identical too
        (it feeds the same edge's lower bound at harvest time), the child
        request is capped at the rows remaining until the range can first
        be violated: the child stops at exactly the row where row-at-a-time
        execution stops.  Interrupt polls and the §7 work-budget trigger
        move to batch boundaries — the documented poll-granularity
        difference between the modes.
        """
        self.require_open()
        if self.ctx.interruptible:
            self.ctx.check_interrupt()
        want = max_rows
        armed = not self._disabled and not self._evaluated_once
        rng = self.plan.check_range
        if armed and rng.high != math.inf:
            # Rows until the count first exceeds ``high`` (>= 1 here, since
            # count <= high whenever the mid-stream evaluation is armed).
            want = min(want, math.floor(rng.high) + 1 - self.count)
        batch = self.child.next_batch(want)
        p = self.ctx.cost_params
        if batch is None:
            self.ctx.meter.charge(p.cpu_check, "check")
            self.finish()
            if armed:
                self._evaluate(complete=True)
                self._evaluated_once = True
            return None
        n = len(batch)
        self.ctx.meter.charge(n * p.cpu_check, "check")
        self.count += n
        if armed and self.count > rng.high:
            self._evaluate(complete=False)
            self._evaluated_once = True  # dry-run mode: log only once
        budget = self.ctx.work_budget
        if (
            budget is not None
            and not self._disabled
            and not self.ctx.dry_run_checks
            and self.ctx.meter.units > budget
            and (self.ctx.rows_returned == 0 or self.plan.flavor == "ECDC")
        ):
            raise ReoptimizationSignal(
                self.plan, self.count, complete=False, reason="budget"
            )
        return self.emit_batch(batch)

    def profile_extras(self) -> dict:
        return {
            "flavor": self.plan.flavor,
            "observed": self.count,
            "evaluated": self._evaluated_once,
        }


class BufCheckExec(Operator):
    """The buffered CHECK of ECB (paper Fig. 8 / Fig. 10 right column)."""

    def __init__(self, plan: BufCheck, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._buffer: list[tuple] = []
        self._pos = 0
        self._decided = False
        self._child_eof = False

    def open(self) -> None:
        super().open()
        self.child.open()
        p = self.ctx.cost_params
        rng = self.plan.check_range
        disabled = self.plan.op_id in self.ctx.disabled_check_op_ids
        forced = self.plan.op_id in self.ctx.force_trigger_op_ids
        self._buffer = []
        self._pos = 0
        self._child_eof = False
        # Fill the valve until the check's outcome is certain.  In batch
        # mode the child is pulled through ``next_batch(1)`` — single-row
        # batches keep the pull count (and the child's emitted-row counter,
        # which feeds cardinality harvesting) exactly equal to row mode
        # while still driving the child's one-protocol-per-execution batch
        # path.
        batch_mode = self.ctx.batch_size > 0
        count = 0
        triggered = False
        complete = False
        while True:
            if count > rng.high:
                triggered = True
                break
            if count >= rng.low and rng.high == float("inf") and count >= self.plan.buffer_size:
                break  # low bound satisfied, no upper bound to violate
            if count >= self.plan.buffer_size and count <= rng.high:
                # Buffer exhausted without a verdict; optimistically succeed
                # and continue pipelined (the ECB "morphs into" streaming).
                break
            if batch_mode:
                one = self.child.next_batch(1)
                row = one[0] if one else None
            else:
                row = self.child.next()
            self.ctx.meter.charge(p.cpu_check + p.cpu_temp_insert, "check")
            if row is None:
                self._child_eof = True
                complete = True
                triggered = count < rng.low
                break
            self._buffer.append(row)
            count += 1
        if forced and not disabled:
            triggered = True
        self.ctx.log_checkpoint(
            CheckpointEvent(
                op_id=self.plan.op_id or -1,
                flavor="ECB",
                observed=count,
                low=rng.low,
                high=rng.high,
                complete=complete,
                units_at_event=self.ctx.meter.snapshot(),
                triggered=triggered and not disabled,
            )
        )
        if triggered and not disabled and not self.ctx.dry_run_checks:
            raise ReoptimizationSignal(self.plan, count, complete)
        self._decided = True

    def next(self) -> Optional[tuple]:
        self.require_open()
        p = self.ctx.cost_params
        if self._pos < len(self._buffer):
            row = self._buffer[self._pos]
            self._pos += 1
            self.ctx.meter.charge(p.cpu_temp_scan, "check")
            return self.emit(row)
        if self._child_eof:
            self.finish()
            return None
        row = self.child.next()
        self.ctx.meter.charge(p.cpu_check, "check")
        if row is None:
            self._child_eof = True
            self.finish()
            return None
        return self.emit(row)

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        p = self.ctx.cost_params
        buf = self._buffer
        if self._pos < len(buf):
            take = min(max_rows, len(buf) - self._pos)
            out = buf[self._pos:self._pos + take]
            self._pos += take
            self.ctx.meter.charge(take * p.cpu_temp_scan, "check")
            return self.emit_batch(out)
        if self._child_eof:
            self.finish()
            return None
        batch = self.child.next_batch(max_rows)
        if batch is None:
            self.ctx.meter.charge(p.cpu_check, "check")
            self._child_eof = True
            self.finish()
            return None
        self.ctx.meter.charge(len(batch) * p.cpu_check, "check")
        return self.emit_batch(batch)

    def profile_extras(self) -> dict:
        return {
            "flavor": "ECB",
            "buffered_rows": len(self._buffer),
            "decided": self._decided,
        }
