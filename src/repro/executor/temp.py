"""TEMP: materialize the child into a temporary table (paper §3.1).

TEMPs are POP's second kind of materialization point; LCEM inserts
TEMP/CHECK pairs on nested-loop outers, and the rescan NLJN method uses a
TEMP inner so repeated scans read the materialized rows.

Under the memory governor a TEMP whose input outgrows its grant keeps a
grant-sized prefix in memory and overflows the rest to a spill file;
``reset()`` rescans re-read the overflow from disk (each pass charged to
the ``"spill"`` meter category), so NLJN rescans keep working on inputs
that no longer fit.
"""

from __future__ import annotations

from itertools import islice
from typing import Optional

from repro.executor.base import ExecutionContext, Operator
from repro.plan.physical import Temp


class TempExec(Operator):
    """Drains its child at open; streams (and can re-stream) the result."""

    def __init__(self, plan: Temp, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._rows: Optional[list[tuple]] = None
        self._pos = 0
        self.build_complete = False
        self.spilled = False
        self._overflow = None
        self._overflow_iter = None

    def open(self) -> None:
        super().open()
        self.child.open()
        p = self.ctx.cost_params
        if self.ctx.spill_enabled:
            self._open_spilling()
            return
        interruptible = self.ctx.interruptible
        rows: list[tuple] = []
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.child.next_batch(batch_size)
                if batch is None:
                    break
                # Blocking fill phase: poll per inserted batch.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_temp_insert, "temp")
                rows.extend(batch)
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                # Blocking fill phase: poll per inserted row.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_temp_insert, "temp")
                rows.append(row)
        pages = self.ctx.cost_model.pages_for(len(rows))
        if pages > self.ctx.grant_pages(p.temp_mem_pages, "temp"):
            self.ctx.meter.charge(pages * p.io_page, "temp")
        self._rows = rows
        self._pos = 0
        self.build_complete = True

    def _open_spilling(self) -> None:
        """Governed build: grant-sized memory prefix, disk overflow."""
        p = self.ctx.cost_params
        grant = self.ctx.grant_pages(p.temp_mem_pages, "temp")
        capacity = max(1, int(grant * p.rows_per_page))
        interruptible = self.ctx.interruptible
        rows: list[tuple] = []
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.child.next_batch(batch_size)
                if batch is None:
                    break
                # A cancel mid-overflow must not leak the spill file:
                # raising here unwinds into run_plan's teardown and
                # release_spill.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(len(batch) * p.cpu_temp_insert, "temp")
                # Exact capacity split for batches straddling the boundary:
                # the memory prefix holds precisely ``capacity`` rows and
                # the remainder overflows, matching the row loop ordinal
                # for ordinal (the PR-5 off-by-one bug class).
                room = capacity - len(rows)
                if room >= len(batch):
                    rows.extend(batch)
                    continue
                if room > 0:
                    rows.extend(batch[:room])
                overflow = batch[room:] if room > 0 else batch
                if self._overflow is None:
                    self._overflow = self.ctx.spill.create("temp", "temp-overflow")
                    self.spilled = True
                self._overflow.append_batch(overflow)
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                # A cancel mid-overflow must not leak the spill file:
                # raising here unwinds into run_plan's teardown and
                # release_spill.
                if interruptible:
                    self.ctx.check_interrupt()
                self.ctx.meter.charge(p.cpu_temp_insert, "temp")
                if len(rows) < capacity:
                    rows.append(row)
                else:
                    if self._overflow is None:
                        self._overflow = self.ctx.spill.create("temp", "temp-overflow")
                        self.spilled = True
                    self._overflow.append(row)
        self._rows = rows
        self._pos = 0
        self.build_complete = True

    def reset(self) -> None:
        """Restart iteration over the materialized rows (NLJN rescans)."""
        self._pos = 0
        self._overflow_iter = None

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._rows is not None
        if self._pos < len(self._rows):
            row = self._rows[self._pos]
            self._pos += 1
            self.ctx.meter.charge(self.ctx.cost_params.cpu_temp_scan, "temp")
            return self.emit(row)
        if self._overflow is not None:
            if self._overflow_iter is None:
                self._overflow_iter = self._overflow.rows()
            row = next(self._overflow_iter, None)
            if row is not None:
                self.ctx.meter.charge(self.ctx.cost_params.cpu_temp_scan, "temp")
                return self.emit(row)
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        assert self._rows is not None
        rows = self._rows
        pos = self._pos
        if pos < len(rows):
            take = min(max_rows, len(rows) - pos)
            self._pos = pos + take
            self.ctx.meter.charge(
                take * self.ctx.cost_params.cpu_temp_scan, "temp"
            )
            return self.emit_batch(rows[pos:pos + take])
        if self._overflow is not None:
            if self._overflow_iter is None:
                self._overflow_iter = self._overflow.rows()
            out = list(islice(self._overflow_iter, max_rows))
            if out:
                self.ctx.meter.charge(
                    len(out) * self.ctx.cost_params.cpu_temp_scan, "temp"
                )
                return self.emit_batch(out)
        self.finish()
        return None

    @property
    def materialized_rows(self) -> Optional[list[tuple]]:
        if self.spilled:
            return None
        return self._rows if self.build_complete else None

    def profile_extras(self) -> dict:
        return {
            "build_complete": self.build_complete,
            "spilled": self.spilled,
            "in_memory_rows": len(self._rows) if self._rows is not None else 0,
            "overflow_rows": (
                self._overflow.row_count if self._overflow is not None else 0
            ),
        }
