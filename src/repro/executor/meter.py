"""The deterministic work meter.

Execution "time" in this reproduction is measured in the same cost units the
optimizer models (see :mod:`repro.optimizer.costmodel`): every executor
operator charges CPU-per-row and I/O-per-page work as it runs.  This keeps
measured execution consistent with modeled cost, makes all benchmark figures
deterministic, and replaces the paper's wall-clock measurements on Power3/4
hardware (DESIGN.md substitution table).  Wall-clock time is still recorded
by the driver for reference.
"""

from __future__ import annotations


class WorkMeter:
    """Accumulates simulated work units."""

    def __init__(self) -> None:
        self.units = 0.0

    def charge(self, units: float) -> None:
        self.units += units

    def snapshot(self) -> float:
        return self.units

    def reset(self) -> None:
        self.units = 0.0
