"""The deterministic work meter.

Execution "time" in this reproduction is measured in the same cost units the
optimizer models (see :mod:`repro.optimizer.costmodel`): every executor
operator charges CPU-per-row and I/O-per-page work as it runs.  This keeps
measured execution consistent with modeled cost, makes all benchmark figures
deterministic, and replaces the paper's wall-clock measurements on Power3/4
hardware (DESIGN.md substitution table).  Wall-clock time is still recorded
by the driver for reference.

Charges may carry a *category* name ("execute", "optimize", "check",
"sort", ...) so the observability layer can attribute overhead.  Category
accounting is opt-in (``track_categories=True``): the default meter ignores
the category argument entirely, keeping the per-row hot path a single
float addition either way — ``units`` is identical with tracking on or off.
"""

from __future__ import annotations

from typing import Optional


class WorkMeter:
    """Accumulates simulated work units, optionally per category."""

    __slots__ = ("units", "_by_category")

    def __init__(self, track_categories: bool = False) -> None:
        self.units = 0.0
        self._by_category: Optional[dict[str, float]] = (
            {} if track_categories else None
        )

    def charge(self, units: float, category: Optional[str] = None) -> None:
        self.units += units
        if self._by_category is not None and category is not None:
            self._by_category[category] = (
                self._by_category.get(category, 0.0) + units
            )

    def snapshot(self) -> float:
        return self.units

    def by_category(self) -> dict[str, float]:
        """Per-category totals; uncategorized work appears under "other"."""
        if self._by_category is None:
            return {}
        categorized = sum(self._by_category.values())
        out = dict(self._by_category)
        other = self.units - categorized
        if other > 1e-9:
            out["other"] = other
        return out

    def reset(self) -> None:
        self.units = 0.0
        if self._by_category is not None:
            self._by_category = {}
