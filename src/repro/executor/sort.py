"""SORT: the canonical materialization point (paper §3.1).

Two execution modes:

* **In-memory** (the default, and the only mode without a
  :class:`~repro.core.config.MemoryPolicy`): drain, sort, stream — the
  fully built result is promotable to a temp MV.
* **External merge** (memory governor active): rows are collected into
  grant-sized runs, each run sorted and spilled through
  :mod:`repro.storage.spill`, and the output is a k-way merge of the run
  files.  The merge is stable across runs in arrival order, so the output
  ordering is *identical* to the in-memory stable sort — degradation
  changes cost, never answers.
"""

from __future__ import annotations

import heapq
import math
from itertools import islice
from typing import Optional

from repro.executor.base import ExecutionContext, Operator
from repro.plan.physical import Sort


def _sort_key(value):
    """Sort wrapper placing NULLs first and keeping values comparable."""
    return (value is None, value)


class _Reversed:
    """Inverts comparisons, so descending keys compose into one ascending
    composite key (usable by both ``sorted`` and ``heapq.merge``)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return other.value == self.value


class SortExec(Operator):
    """Drains its child at open, sorts, then streams the sorted rows.

    When the build fits its grant, the fully built result is exposed
    through :attr:`materialized_rows`, so POP can promote it to a temp MV
    when a checkpoint fires later in the plan (paper §2.3).  A spilled
    sort exposes nothing — its rows live in run files, not memory.
    """

    def __init__(self, plan: Sort, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._rows: Optional[list[tuple]] = None
        self._pos = 0
        self.build_complete = False
        self.spilled = False
        self._merge = None

    def _composite_key(self):
        slots = [self.plan.layout.slot(k) for k in self.plan.keys]
        pairs = list(zip(slots, self.plan.ascending))

        def key(row):
            return tuple(
                _sort_key(row[slot]) if asc else _Reversed(_sort_key(row[slot]))
                for slot, asc in pairs
            )

        return key

    def open(self) -> None:
        super().open()
        self.child.open()
        if self.ctx.spill_enabled:
            self._open_external()
            return
        p = self.ctx.cost_params
        interruptible = self.ctx.interruptible
        rows: list[tuple] = []
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.child.next_batch(batch_size)
                if batch is None:
                    break
                rows.extend(batch)
                # Blocking build phase: poll per drained batch.
                if interruptible:
                    self.ctx.check_interrupt()
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                rows.append(row)
                # Blocking build phase: no row reaches emit() until the
                # drain finishes, so poll the interrupt sources here.
                if interruptible:
                    self.ctx.check_interrupt()
        slots = [self.plan.layout.slot(k) for k in self.plan.keys]
        # Stable multi-key sort honoring per-key direction: sort by each key
        # from least to most significant.
        for slot, ascending in reversed(list(zip(slots, self.plan.ascending))):
            rows.sort(key=lambda r, s=slot: _sort_key(r[s]), reverse=not ascending)
        n = len(rows)
        if n:
            self.ctx.meter.charge(n * max(1.0, math.log2(n + 1)) * p.cpu_sort, "sort")
            pages = self.ctx.cost_model.pages_for(n)
            grant = self.ctx.grant_pages(p.sort_mem_pages, "sort")
            if pages > grant:
                passes = math.ceil(math.log(pages / grant, 8)) + 1
                self.ctx.meter.charge(2.0 * pages * p.io_page * passes, "sort")
        self._rows = rows
        self._pos = 0
        self.build_complete = True

    def _open_external(self) -> None:
        """Governed build: grant-sized runs, spilled, k-way merged."""
        p = self.ctx.cost_params
        grant = self.ctx.grant_pages(p.sort_mem_pages, "sort")
        capacity = max(1, int(grant * p.rows_per_page))
        key = self._composite_key()
        interruptible = self.ctx.interruptible
        runs = []
        buf: list[tuple] = []
        n = 0
        batch_size = self.ctx.batch_size
        if batch_size > 0:
            while True:
                batch = self.child.next_batch(batch_size)
                if batch is None:
                    break
                # Cancellation during the spilling build is the hard case
                # this poll exists for: the run files created below are
                # torn down by run_plan's finally (close + release_spill)
                # when it raises.
                if interruptible:
                    self.ctx.check_interrupt()
                for row in batch:
                    # Same flush-before-append body as the row loop below,
                    # applied per row of the batch: run boundaries fall on
                    # exactly the same input ordinals regardless of how the
                    # batch straddles the capacity (an input that exactly
                    # fills the grant still never flushes).
                    if len(buf) >= capacity:
                        buf.sort(key=key)
                        runs.append(
                            self.ctx.spill.spill_rows(
                                "sort", buf, f"sort-run-{len(runs)}"
                            )
                        )
                        buf = []
                    buf.append(row)
                n += len(batch)
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                # Cancellation during the spilling build is the hard case
                # this poll exists for: the run files created below are torn
                # down by run_plan's finally (close + release_spill) when it
                # raises.
                if interruptible:
                    self.ctx.check_interrupt()
                if len(buf) >= capacity:
                    # Flush only when another row actually arrives: an input
                    # that exactly fills the grant stays in memory.
                    buf.sort(key=key)
                    runs.append(
                        self.ctx.spill.spill_rows("sort", buf, f"sort-run-{len(runs)}")
                    )
                    buf = []
                buf.append(row)
                n += 1
        if n:
            self.ctx.meter.charge(n * max(1.0, math.log2(n + 1)) * p.cpu_sort, "sort")
        if runs:
            # heapq.merge is stable across inputs in arrival order, and each
            # run was sorted with the same composite key, so the merged
            # stream equals the in-memory stable sort row for row.
            if buf:
                buf.sort(key=key)
                runs.append(self.ctx.spill.spill_rows("sort", buf, "sort-run-final"))
            self.spilled = True
            self._merge = heapq.merge(*(run.rows() for run in runs), key=key)
        else:
            buf.sort(key=key)
            self._rows = buf
        self._pos = 0
        self.build_complete = True

    def next(self) -> Optional[tuple]:
        self.require_open()
        if self._merge is not None:
            row = next(self._merge, None)
            if row is not None:
                return self.emit(row)
            self.finish()
            return None
        assert self._rows is not None
        if self._pos < len(self._rows):
            row = self._rows[self._pos]
            self._pos += 1
            return self.emit(row)
        self.finish()
        return None

    def next_batch(self, max_rows: int) -> Optional[list[tuple]]:
        self.require_open()
        if self._merge is not None:
            out = list(islice(self._merge, max_rows))
            if not out:
                self.finish()
                return None
            return self.emit_batch(out)
        assert self._rows is not None
        rows = self._rows
        pos = self._pos
        if pos >= len(rows):
            self.finish()
            return None
        take = min(max_rows, len(rows) - pos)
        self._pos = pos + take
        # No per-row serve charge in row mode either: the sort cost was
        # charged in full at build time.
        return self.emit_batch(rows[pos:pos + take])

    @property
    def materialized_rows(self) -> Optional[list[tuple]]:
        if self.spilled:
            return None
        return self._rows if self.build_complete else None

    def profile_extras(self) -> dict:
        return {
            "build_complete": self.build_complete,
            "spilled": self.spilled,
            "in_memory_rows": len(self._rows) if self._rows is not None else 0,
        }
