"""SORT: the canonical materialization point (paper §3.1)."""

from __future__ import annotations

import math
from typing import Optional

from repro.executor.base import ExecutionContext, Operator
from repro.plan.physical import Sort


def _sort_key(value):
    """Sort wrapper placing NULLs first and keeping values comparable."""
    return (value is None, value)


class SortExec(Operator):
    """Drains its child at open, sorts, then streams the sorted rows.

    The fully built result is exposed through :attr:`materialized_rows`, so
    POP can promote it to a temp MV when a checkpoint fires later in the
    plan (paper §2.3).
    """

    def __init__(self, plan: Sort, ctx: ExecutionContext, child: Operator):
        super().__init__(plan, ctx)
        self.child = child
        self._rows: Optional[list[tuple]] = None
        self._pos = 0
        self.build_complete = False

    def open(self) -> None:
        super().open()
        self.child.open()
        p = self.ctx.cost_params
        rows: list[tuple] = []
        while True:
            row = self.child.next()
            if row is None:
                break
            rows.append(row)
        slots = [self.plan.layout.slot(k) for k in self.plan.keys]
        # Stable multi-key sort honoring per-key direction: sort by each key
        # from least to most significant.
        for slot, ascending in reversed(list(zip(slots, self.plan.ascending))):
            rows.sort(key=lambda r, s=slot: _sort_key(r[s]), reverse=not ascending)
        n = len(rows)
        if n:
            self.ctx.meter.charge(n * max(1.0, math.log2(n + 1)) * p.cpu_sort, "sort")
            pages = self.ctx.cost_model.pages_for(n)
            grant = self.ctx.grant_pages(p.sort_mem_pages, "sort")
            if pages > grant:
                passes = math.ceil(math.log(pages / grant, 8)) + 1
                self.ctx.meter.charge(2.0 * pages * p.io_page * passes, "sort")
        self._rows = rows
        self._pos = 0
        self.build_complete = True

    def next(self) -> Optional[tuple]:
        self.require_open()
        assert self._rows is not None
        if self._pos < len(self._rows):
            row = self._rows[self._pos]
            self._pos += 1
            return self.emit(row)
        self.finish()
        return None

    @property
    def materialized_rows(self) -> Optional[list[tuple]]:
        return self._rows if self.build_complete else None
