"""Plan interpretation: building operator trees and running them."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ExecutionError, ExecutionTimeout
from repro.executor.aggregate import DistinctExec, GroupByExec
from repro.executor.base import ExecutionContext, Operator
from repro.executor.check import BufCheckExec, CheckExec
from repro.executor.joins import HashJoinExec, MergeJoinExec, NLJoinExec
from repro.executor.misc import AntiJoinExec, HavingFilterExec, ProjectExec, ReturnExec
from repro.executor.scans import IndexScanExec, MVScanExec, TableScanExec
from repro.executor.sort import SortExec
from repro.executor.temp import TempExec
from repro.plan.physical import (
    AntiJoin,
    BufCheck,
    Check,
    Distinct,
    GroupBy,
    HashJoin,
    HavingFilter,
    IndexScan,
    MergeJoin,
    MVScan,
    NLJoin,
    PlanOp,
    Project,
    Return,
    Sort,
    TableScan,
    Temp,
)


def build_executor(plan: PlanOp, ctx: ExecutionContext) -> Operator:
    """Recursively instantiate the operator tree for a physical plan."""
    if isinstance(plan, TableScan):
        return TableScanExec(plan, ctx)
    if isinstance(plan, IndexScan):
        return IndexScanExec(plan, ctx)
    if isinstance(plan, MVScan):
        return MVScanExec(plan, ctx)
    if isinstance(plan, NLJoin):
        outer = build_executor(plan.outer, ctx)
        inner = build_executor(plan.inner, ctx)
        return NLJoinExec(plan, ctx, outer, inner)
    if isinstance(plan, HashJoin):
        outer = build_executor(plan.outer, ctx)
        inner = build_executor(plan.inner, ctx)
        return HashJoinExec(plan, ctx, outer, inner)
    if isinstance(plan, MergeJoin):
        outer = build_executor(plan.outer, ctx)
        inner = build_executor(plan.inner, ctx)
        return MergeJoinExec(plan, ctx, outer, inner)
    if isinstance(plan, Sort):
        return SortExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, Temp):
        return TempExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, GroupBy):
        return GroupByExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, Distinct):
        return DistinctExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, HavingFilter):
        return HavingFilterExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, Project):
        return ProjectExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, Return):
        return ReturnExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, Check):
        return CheckExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, BufCheck):
        return BufCheckExec(plan, ctx, build_executor(plan.children[0], ctx))
    if isinstance(plan, AntiJoin):
        return AntiJoinExec(plan, ctx, build_executor(plan.children[0], ctx))
    raise ExecutionError(f"no executor for plan operator {plan.KIND}")


def _check_deadline(ctx: ExecutionContext, deadline: float) -> None:
    if ctx.meter.units > deadline:
        raise ExecutionTimeout(
            f"work deadline exceeded: {ctx.meter.units:.1f} of "
            f"{deadline:.1f} units spent"
        )


def run_plan(
    plan: PlanOp,
    ctx: ExecutionContext,
    sink: Optional[list] = None,
) -> list[tuple]:
    """Build and drain a plan; returns the rows (appended to ``sink``).

    Re-optimization signals propagate to the caller with the operator tree
    left in place inside ``ctx.operators`` for harvesting; every operator is
    still closed (``close`` is idempotent and does not discard harvested
    materializations), so no error path leaks open state.

    When a fault injector is mounted on the context, it is armed over the
    freshly built operator tree here — the single sanctioned injection
    point (see :mod:`repro.resilience`).  When the context carries a work
    deadline, it is enforced at the plan root after ``open`` and after
    every emitted row; a cancel token or wall-clock deadline is likewise
    polled at the root via :meth:`ExecutionContext.check_interrupt`.

    Teardown ordering matters on abort paths: every registered operator
    is closed (a ``close`` that itself fails must not stop the remaining
    closes — spill-backed operators close their run files there), and the
    spill manager is released exactly once in a nested ``finally`` so a
    cancellation mid-spill can never leak pages.  A close-time failure is
    re-raised only when the plan otherwise completed; an in-flight
    exception (signal, fault, cancel, timeout) is never masked by one.
    """
    root = build_executor(plan, ctx)
    if ctx.fault_injector is not None:
        ctx.fault_injector.arm(ctx)
    # Profiling arms after fault injection so injected-fault overhead is
    # attributed to the operator it fires in; like the injector this is
    # the single mount point and costs nothing when no profiler is set.
    if ctx.profiler is not None:
        ctx.profiler.arm(ctx)
    rows = sink if sink is not None else []
    deadline = ctx.work_deadline
    interruptible = ctx.interruptible
    completed = False
    try:
        root.open()
        if deadline is not None:
            _check_deadline(ctx, deadline)
        if interruptible:
            ctx.check_interrupt()
        batch_size = ctx.batch_size
        if batch_size > 0:
            # Vectorized drain: one root call and one deadline/interrupt
            # poll per batch instead of per row.  Identical rows, row
            # counters, CHECK decisions, and meter totals as the row loop
            # below (tests/test_executor_batch_differential.py).
            while True:
                batch = root.next_batch(batch_size)
                if batch is None:
                    break
                rows.extend(batch)
                if deadline is not None:
                    _check_deadline(ctx, deadline)
                if interruptible:
                    ctx.check_interrupt()
        else:
            while True:
                row = root.next()
                if row is None:
                    break
                rows.append(row)
                if deadline is not None:
                    _check_deadline(ctx, deadline)
                if interruptible:
                    ctx.check_interrupt()
        completed = True
    finally:
        close_failure = None
        try:
            for op in ctx.operators:
                try:
                    op.close()
                except Exception as exc:  # teardown must visit every operator
                    if close_failure is None:
                        close_failure = exc
        finally:
            # Spill files are attempt-scoped: success and every abort path
            # (signal, fault, cancel, timeout — even a failing close above)
            # release them here (contract rule ``spill-lifecycle``).
            ctx.release_spill()
        if completed and close_failure is not None:
            raise close_failure
    return rows
