"""Structural plan fingerprints.

A fingerprint is a stable digest of everything that defines a physical
plan: operator kinds and their operator-specific fields, estimated
cardinalities and costs, validity ranges, CHECK ranges and flavors, and
tree structure.  Two uses:

* the plan cache deduplicates plan variants per statement shape by
  fingerprint, and
* cached plans must never be mutated in place (they are re-executed
  verbatim); the cache re-fingerprints every candidate before reuse and the
  ``cache-plan-immutable`` lint rule audits the same invariant in strict
  mode.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterator

from repro.plan.physical import PlanOp


def _num(value: float) -> str:
    """Canonical text for floats (inf-safe, round-trip stable)."""
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    return repr(float(value))


def _describe_tokens(op: PlanOp) -> Iterator[str]:
    """The identity-bearing tokens of one operator."""
    yield op.KIND
    # describe() covers the operator-specific fields (table, filters, join
    # predicates, sort keys, MV name, ...) in a stable textual form.
    yield op.describe()
    yield _num(op.est_card)
    yield _num(op.est_cost)
    for rng in op.validity_ranges:
        yield f"[{_num(rng.low)},{_num(rng.high)}]"
    check_range = getattr(op, "check_range", None)
    if check_range is not None:
        flavor = getattr(op, "flavor", "")
        yield f"check:{flavor}:[{_num(check_range.low)},{_num(check_range.high)}]"
        buffer_size = getattr(op, "buffer_size", None)
        if buffer_size is not None:
            yield f"buf:{buffer_size}"


def plan_fingerprint(root: PlanOp) -> str:
    """A stable hex digest of the plan's structure and annotations."""
    hasher = hashlib.sha256()
    for op in root.walk():
        for token in _describe_tokens(op):
            hasher.update(token.encode("utf-8", "replace"))
            hasher.update(b"\x1f")
        hasher.update(f"children:{len(op.children)}".encode())
        hasher.update(b"\x1e")
    return hasher.hexdigest()
