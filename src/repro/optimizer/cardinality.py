"""Cardinality estimation for plans.

The estimator combines base-table statistics, the selectivity model of
:mod:`repro.stats.selectivity` (with its deliberate independence and
default-selectivity assumptions), and POP's runtime cardinality feedback.

Cardinalities are computed per *edge signature* (tables joined, predicates
applied), which makes estimates independent of join order — the standard
System-R property — and lets one feedback observation correct every plan
alternative that produces the same edge.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.feedback import CardinalityFeedback
from repro.expr.predicates import JoinPredicate, Predicate, predicate_set_id
from repro.plan.logical import Query
from repro.stats.selectivity import SelectivityEstimator
from repro.storage.catalog import Catalog


class CardinalityEstimator:
    """Estimates output cardinalities of query sub-plans."""

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        feedback: Optional[CardinalityFeedback] = None,
        selectivity: Optional[SelectivityEstimator] = None,
    ):
        self.catalog = catalog
        self.query = query
        self.feedback = feedback if feedback is not None else CardinalityFeedback()
        self.selectivity = selectivity if selectivity is not None else SelectivityEstimator()
        self._cache: dict = {}
        # Pre-index query structure.
        self._locals = {
            ref.alias: query.local_predicates_for(ref.alias) for ref in query.tables
        }
        self._table_of = {ref.alias: ref.table for ref in query.tables}

    # ------------------------------------------------------------ base tables

    def _stats_for(self, alias: str):
        return self.catalog.statistics(self._table_of[alias])

    def base_cardinality(self, alias: str) -> float:
        """Row count of the base table under ``alias`` (stats, else actual)."""
        stats = self._stats_for(alias)
        if stats is not None:
            return float(stats.row_count)
        return float(self.catalog.table(self._table_of[alias]).row_count)

    def local_selectivity(self, alias: str) -> float:
        """Combined selectivity of all local predicates on ``alias``
        (independence assumption)."""
        preds = self._locals[alias]
        return self.selectivity.conjunction_selectivity(preds, self._stats_for(alias))

    def single_predicate_selectivity(self, alias: str, pred: Predicate) -> float:
        return self.selectivity.local_selectivity(pred, self._stats_for(alias))

    def filtered_cardinality(self, alias: str) -> float:
        """Cardinality of ``alias`` after its local predicates, with feedback."""
        signature = (
            frozenset({alias}),
            predicate_set_id(self._locals[alias]),
        )
        estimate = max(
            0.001, self.base_cardinality(alias) * self.local_selectivity(alias)
        )
        return self.feedback.adjust(signature, estimate)

    # ---------------------------------------------------------------- subsets

    def predicates_for_subset(self, subset: frozenset) -> list[Predicate]:
        """All predicates fully applied once ``subset`` has been joined."""
        preds: list[Predicate] = []
        for alias in sorted(subset):
            preds.extend(self._locals[alias])
        for jp in self.query.join_predicates:
            if jp.tables() <= subset:
                preds.append(jp)
        return preds

    def subset_signature(self, subset: frozenset) -> tuple:
        return (frozenset(subset), predicate_set_id(self.predicates_for_subset(subset)))

    def join_predicate_selectivity(self, pred: JoinPredicate) -> float:
        left_stats = self._stats_for(pred.left.table)
        right_stats = self._stats_for(pred.right.table)
        return self.selectivity.join_selectivity(pred, left_stats, right_stats)

    def subset_cardinality(self, subset: frozenset) -> float:
        """Estimated cardinality of joining every alias in ``subset``.

        The estimate multiplies filtered base cardinalities by the
        selectivity of each internal join predicate — independent of join
        order.  Runtime feedback for the subset's edge signature overrides
        (exact) or clamps (lower bound) the model value.
        """
        key = frozenset(subset)
        if key in self._cache:
            return self._cache[key]
        estimate = 1.0
        for alias in sorted(key):
            base = self.base_cardinality(alias) * self.local_selectivity(alias)
            # Per-alias feedback refines the leaf factors too.
            leaf_sig = (frozenset({alias}), predicate_set_id(self._locals[alias]))
            base = self.feedback.adjust(leaf_sig, max(0.001, base))
            estimate *= base
        for jp in self.query.join_predicates:
            if jp.tables() <= key:
                estimate *= self.join_predicate_selectivity(jp)
        estimate = max(0.001, estimate)
        result = self.feedback.adjust(self.subset_signature(key), estimate)
        self._cache[key] = result
        return result

    # -------------------------------------------------------------- operators

    def matches_per_probe(self, outer_subset: frozenset, inner_alias: str,
                          join_preds: Sequence[JoinPredicate]) -> float:
        """Average inner rows matched per outer row in an index NLJN."""
        outer_card = self.subset_cardinality(outer_subset)
        joined = self.subset_cardinality(outer_subset | {inner_alias})
        if outer_card <= 0:
            return 0.0
        return joined / outer_card

    def group_by_cardinality(self, input_card: float, group_keys) -> float:
        """Distinct-group estimate: product of key NDVs, capped by input."""
        if not group_keys:
            return 1.0 if input_card > 0 else 0.0
        ndv_product = 1.0
        for key in group_keys:
            stats = self._stats_for(key.table)
            ndv = None
            if stats is not None:
                ndv = stats.ndv(key.column)
            ndv_product *= float(ndv) if ndv else 100.0
        return max(1.0, min(input_card, ndv_product))

    def distinct_cardinality(self, input_card: float) -> float:
        return max(1.0, input_card * 0.9)

    def invalidate_cache(self) -> None:
        self._cache.clear()
