"""Validity-range computation via sensitivity analysis (paper §2.2, Fig. 5).

When the dynamic-programming enumerator prunes an alternative plan ``Palt``
in favour of ``Popt`` (same properties, same input edges — *structurally
equivalent* plans), we ask: for which cardinalities of each input edge does
``Popt`` remain cheaper?  The answer narrows the edge's validity range; at
runtime a CHECK on that edge compares the observed row count against the
range and triggers re-optimization only when we can guarantee a better
structurally equivalent alternative exists.

Because real cost functions are piecewise, non-smooth and occasionally even
non-monotonic (our sort/hash spill steps reproduce this), the paper replaces
analytic root finding with a *modified Newton–Raphson* probe (Fig. 5):

* probe geometrically (×1.1) away from the estimate,
* take a secant/Newton extrapolation step towards the crossover,
* jump ×10 when the difference is diverging,
* cap the iterations (3 by default — the paper found that sufficient), and
* stop immediately on a cost inversion.

The same method runs in both directions: upward probing narrows the upper
bound, downward probing the lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.plan.properties import ValidityRange

#: Cost of a plan as a function of one input-edge cardinality.
CostFn = Callable[[float], float]

#: Fig. 5 probes the edge cardinality in multiplicative steps of 1.1.
PROBE_STEP = 1.1
#: Fig. 5 jumps by a factor of 10 when Newton–Raphson diverges.
DIVERGENCE_JUMP = 10.0
#: Fig. 5 caps the iteration count at 3.
DEFAULT_MAX_ITERATIONS = 3


@dataclass
class SensitivityResult:
    """Outcome of one directional probe."""

    bound: Optional[float]  #: the narrowed bound, or None when not narrowed
    inversion_found: bool  #: True when a genuine cost crossover was observed
    iterations: int
    #: True when the last step shrank the cost difference — evidence that a
    #: crossover lies ahead even though the iteration cap stopped the probe.
    converging: bool = False


def _probe(
    est_card: float,
    cost_opt: CostFn,
    cost_alt: CostFn,
    upward: bool,
    max_iterations: int,
) -> SensitivityResult:
    """One directional run of the Fig. 5 method.

    ``upward=True`` searches for the upper bound (card grows); ``False``
    mirrors every multiplicative step to search downward for the lower bound.
    """
    step = PROBE_STEP if upward else 1.0 / PROBE_STEP
    jump = DIVERGENCE_JUMP if upward else 1.0 / DIVERGENCE_JUMP
    card = max(est_card, 1e-6)
    bound: Optional[float] = None
    iterations = 0
    converging = False

    # Loop invariant entering each iteration: cost_opt(card) < cost_alt(card).
    if cost_opt(card) >= cost_alt(card):
        # The "optimal" plan is not cheaper at the estimate itself; the caller
        # only prunes when it is, so nothing to do (guards degenerate ties).
        return SensitivityResult(None, False, 0)

    while iterations < max_iterations:
        iterations += 1
        curr_diff = cost_alt(card) - cost_opt(card)  # (a) — positive
        card *= step  # (b) need another point for the gradient
        if card <= 0 or not math.isfinite(card):
            break
        new_diff = cost_alt(card) - cost_opt(card)  # (c)
        if new_diff < 0:
            # (d) cost inversion: the alternative is now cheaper — a genuine
            # crossover lies at or before this probe point.
            bound = card
            return SensitivityResult(bound, True, iterations, converging=True)
        converging = new_diff < curr_diff
        if new_diff > curr_diff:
            # (e) diverging: jump an order of magnitude to find the regime
            # change (e.g. a spill step) faster.
            card *= jump
        elif new_diff < curr_diff:
            # (f) converging: Newton/secant extrapolation towards the root.
            # The 11 in the denominator is Fig. 5's damping constant.
            factor = 1.0 + new_diff / (PROBE_STEP * 10.0 * (curr_diff - new_diff))
            if upward:
                card *= max(factor, 1.0)
            else:
                card /= max(factor, 1.0)
        # new_diff == curr_diff: flat difference; keep the geometric step only.
        if card <= 0 or not math.isfinite(card):
            break
        # (g) remember the most advanced probe point as the candidate bound.
        bound = card
        if cost_opt(card) >= cost_alt(card):
            # Inversion (or tie) discovered after the extrapolation step.
            return SensitivityResult(bound, True, iterations, converging=True)

    # Iteration cap reached without an inversion.  Fig. 5 commits the last
    # probe point (step g); we report whether the probe was still converging
    # so the caller can avoid committing a bound in pure-divergence cases
    # (where no crossover exists and the probe point is meaningless).
    return SensitivityResult(bound, False, iterations, converging=converging)


def narrow_validity_range(
    validity: ValidityRange,
    est_card: float,
    cost_opt: CostFn,
    cost_alt: CostFn,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    commit_without_inversion: bool = True,
) -> int:
    """Narrow ``validity`` for one edge, given the winning and pruned plans'
    costs as functions of that edge's cardinality.

    Runs the Fig. 5 probe upward (upper bound) and downward (lower bound).
    ``commit_without_inversion=False`` restricts narrowing to bounds where a
    true cost inversion was observed — strictly conservative, used by the
    ablation study; the default mirrors Fig. 5 step (g).

    Returns the total Newton–Raphson iterations spent across both probes
    (observability: ``optimizer.newton_iterations``).
    """
    up = _probe(est_card, cost_opt, cost_alt, upward=True, max_iterations=max_iterations)
    if up.bound is not None and (
        up.inversion_found or (commit_without_inversion and up.converging)
    ):
        validity.narrow_high(up.bound)
    down = _probe(
        est_card, cost_opt, cost_alt, upward=False, max_iterations=max_iterations
    )
    if (
        down.bound is not None
        # Lower bounds under one row could only ever trigger on an empty
        # intermediate result; suppress them as noise.
        and down.bound >= 1.0
        and (down.inversion_found or (commit_without_inversion and down.converging))
    ):
        validity.narrow_low(down.bound)
    return up.iterations + down.iterations
