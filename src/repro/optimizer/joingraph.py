"""Join-graph analysis used by the plan enumerator."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.expr.predicates import JoinPredicate
from repro.plan.logical import Query


class JoinGraph:
    """Adjacency view of a query's equi-join predicates."""

    def __init__(self, query: Query):
        self.aliases = list(query.aliases)
        self.predicates = list(query.join_predicates)
        self._adjacent: dict[str, set[str]] = {a: set() for a in self.aliases}
        for jp in self.predicates:
            a, b = tuple(jp.tables())
            self._adjacent[a].add(b)
            self._adjacent[b].add(a)

    def neighbors(self, alias: str) -> set[str]:
        return set(self._adjacent[alias])

    def predicates_between(
        self, left: Iterable[str], right: Iterable[str]
    ) -> list[JoinPredicate]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        left_set = set(left)
        right_set = set(right)
        found = []
        for jp in self.predicates:
            a, b = tuple(jp.tables())
            if (a in left_set and b in right_set) or (a in right_set and b in left_set):
                found.append(jp)
        return found

    def connected(self, left: Iterable[str], right: Iterable[str]) -> bool:
        return bool(self.predicates_between(left, right))

    def is_connected_subset(self, subset: Sequence[str]) -> bool:
        """True when the induced subgraph on ``subset`` is connected."""
        nodes = set(subset)
        if not nodes:
            return False
        if len(nodes) == 1:
            return True
        seen = set()
        stack = [next(iter(nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._adjacent[node] & nodes - seen)
        return seen == nodes

    @property
    def fully_connected(self) -> bool:
        return self.is_connected_subset(self.aliases)
