"""System-R style dynamic-programming plan enumeration.

For every connected subset of the query's tables the enumerator keeps the
cheapest plan per interesting order.  Join candidates are generated for all
partitions of a subset (bushy by default, left-deep for wide queries) and all
enabled join methods, plus MV-scan candidates when a temporary materialized
view from a previous partial execution matches the subset (paper §2.3: reuse
is a cost-based *choice*, never forced).

Validity-range narrowing (paper §2.2) is woven into pruning: whenever two
*structurally equivalent* candidates — same pair of input-edge row sets,
commutations included — are compared, the cheaper one's per-edge validity
ranges are narrowed with the Fig. 5 sensitivity probe against the loser's
cost function.  Join-order changes never narrow ranges, exactly as the paper
prescribes (the conservatism that avoids guessing unobservable
correlations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import OptimizerError
from repro.expr.evaluate import RowLayout
from repro.expr.predicates import (
    Between,
    Comparison,
    Predicate,
    predicate_set_id,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.costmodel import CostModel
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.validity import narrow_validity_range
from repro.plan.logical import Aggregate, Query
from repro.plan.physical import (
    Distinct,
    GroupBy,
    HashJoin,
    HavingFilter,
    IndexScan,
    MergeJoin,
    MVScan,
    NLJoin,
    PlanOp,
    Project,
    Return,
    Sort,
    TableScan,
    Temp,
)
from repro.plan.properties import PlanProperties
from repro.storage.catalog import Catalog


@dataclass
class OptimizerOptions:
    """Switches controlling enumeration (several map to paper experiments)."""

    enable_hash_join: bool = True
    enable_merge_join: bool = True
    enable_index_nljn: bool = True
    enable_rescan_nljn: bool = True
    #: Consider temp MVs from previous partial executions (paper §2.3).
    consider_mvs: bool = True
    #: Price MV scans at zero (forces reuse — the "always" ablation policy).
    mv_cost_zero: bool = False
    #: Newton–Raphson iteration cap of the validity probe (paper: 3).
    validity_iterations: int = 3
    #: Commit Fig. 5 step-(g) bounds when the probe converged but the cap hit.
    commit_without_inversion: bool = True
    #: Compute validity ranges at all (ablation switch).
    compute_validity_ranges: bool = True
    #: §7 extension ("Checking Opportunities"): when a query's estimates are
    #: unreliable (parameter markers present), penalize hash joins by this
    #: fraction, steering the plan toward sort-merge — whose naturally
    #: materialized inputs give POP more lazy re-optimization opportunities.
    uncertainty_penalty: float = 0.0
    #: "bushy", "leftdeep", or "auto" (bushy up to auto_bushy_limit tables).
    join_enumeration: str = "auto"
    auto_bushy_limit: int = 8
    #: Keep at most this many interesting-order plans per subset.
    max_plans_per_subset: int = 4
    #: Strict analysis: lint every optimized plan (:mod:`repro.analysis`)
    #: before returning it and raise on error-severity findings.
    strict_analysis: bool = False


@dataclass
class Candidate:
    """One physical alternative for a table subset during DP."""

    plan: PlanOp
    cost: float
    order: tuple
    #: Identity of the two input edges as (outer tables, inner tables);
    #: ``None`` for leaf candidates (scans, MV scans).
    edge_subsets: Optional[tuple] = None
    #: Total cost as a function of (outer_card, inner_card); None for leaves.
    cost_fn: Optional[Callable[[float, float], float]] = None


def order_satisfies(provided: tuple, required: tuple) -> bool:
    """True when ``provided`` output order covers ``required`` as a prefix."""
    return provided[: len(required)] == tuple(required)


class PlanEnumerator:
    """Runs the DP for one query and produces the final physical plan."""

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        options: Optional[OptimizerOptions] = None,
    ):
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.options = options if options is not None else OptimizerOptions()
        self.graph = JoinGraph(query)
        #: Number of candidate plans constructed (drives re-optimization cost).
        self.plans_enumerated = 0
        #: Total Fig. 5 Newton–Raphson iterations spent narrowing validity
        #: ranges (observability: the sensitivity analysis's share of work).
        self.newton_iterations = 0
        self._allow_cross = not self.graph.fully_connected
        #: Hash-join cost multiplier under estimate uncertainty (§7).
        self._hash_penalty = 1.0
        if self.options.uncertainty_penalty > 0.0 and any(
            p.has_marker for p in query.local_predicates
        ):
            self._hash_penalty = 1.0 + self.options.uncertainty_penalty

    # ================================================================ leaves

    def _table_layout(self, alias: str) -> RowLayout:
        table = self.catalog.table(self.query.table_for(alias).table)
        return RowLayout([f"{alias}.{c}" for c in table.schema.names()])

    def _leaf_properties(self, alias: str) -> PlanProperties:
        preds = self.query.local_predicates_for(alias)
        return PlanProperties(
            tables=frozenset({alias}), predicates=predicate_set_id(preds)
        )

    def _sargable(self, pred: Predicate, column: str, supports_range: bool) -> bool:
        """Can ``pred`` be evaluated through an index on ``column``?"""
        if isinstance(pred, Comparison) and pred.column.column == column:
            if pred.op == "=":
                return True
            return supports_range and pred.op in ("<", "<=", ">", ">=")
        if isinstance(pred, Between) and pred.column.column == column:
            return supports_range
        return False

    def access_paths(self, alias: str) -> list[Candidate]:
        """Scan alternatives for one base table."""
        table_name = self.query.table_for(alias).table
        table = self.catalog.table(table_name)
        stats = self.catalog.statistics(table_name)
        pages = float(stats.page_count) if stats is not None else float(table.page_count)
        base_rows = self.estimator.base_cardinality(alias)
        preds = self.query.local_predicates_for(alias)
        layout = self._table_layout(alias)
        props = self._leaf_properties(alias)
        card = self.estimator.filtered_cardinality(alias)

        candidates = [
            Candidate(
                plan=TableScan(
                    alias, table_name, preds, props, layout,
                    est_card=card,
                    est_cost=self.cost_model.table_scan_cost(pages, base_rows),
                ),
                cost=self.cost_model.table_scan_cost(pages, base_rows),
                order=(),
            )
        ]
        self.plans_enumerated += 1

        for index in self.catalog.indexes_on(table_name):
            sarg = next(
                (
                    p
                    for p in preds
                    if self._sargable(p, index.column, index.supports_range)
                ),
                None,
            )
            if sarg is None:
                continue
            sarg_sel = self.estimator.single_predicate_selectivity(alias, sarg)
            matched = max(1.0, base_rows * sarg_sel)
            residual = [p for p in preds if p is not sarg]
            cost = self.cost_model.index_range_scan_cost(
                matched, float(index.leaf_pages), pages
            )
            order = (
                (f"{alias}.{index.column}",) if index.supports_range else ()
            )
            plan = IndexScan(
                alias, table_name, index.name, sarg, residual,
                props.with_order(order), layout,
                est_card=card, est_cost=cost,
            )
            candidates.append(Candidate(plan=plan, cost=cost, order=order))
            self.plans_enumerated += 1

        candidates.extend(self._mv_candidates(frozenset({alias})))
        return candidates

    # ================================================================ MV reuse

    def _mv_candidates(self, subset: frozenset) -> list[Candidate]:
        """MV-scan alternatives for ``subset`` from temp MVs (paper §2.3)."""
        if not self.options.consider_mvs:
            return []
        required = predicate_set_id(self.estimator.predicates_for_subset(subset))
        candidates = []
        for mv in self.catalog.temp_mvs():
            if mv.tables != subset or not (mv.predicate_ids <= required):
                continue
            residual_ids = required - mv.predicate_ids
            residual = [
                p
                for p in self.estimator.predicates_for_subset(subset)
                if p.pred_id in residual_ids
            ]
            if residual:
                # Residual predicates must be evaluable over the MV's columns.
                mv_cols = set(mv.columns)
                if any(
                    c.qualified not in mv_cols for p in residual for c in p.columns()
                ):
                    continue
                card = max(0.001, mv.cardinality * 0.5)
            else:
                card = float(mv.cardinality)
            cost = (
                0.0
                if self.options.mv_cost_zero
                else self.cost_model.mv_scan_cost(mv.cardinality)
            )
            props = PlanProperties(
                tables=subset, predicates=required, order=tuple(mv.order)
            )
            plan = MVScan(
                mv.name, props, RowLayout(list(mv.columns)),
                est_card=card, est_cost=cost, filters=residual,
            )
            candidates.append(
                Candidate(plan=plan, cost=cost, order=tuple(mv.order))
            )
            self.plans_enumerated += 1
        return candidates

    # ================================================================= joins

    def _join_properties(self, subset: frozenset) -> PlanProperties:
        return PlanProperties(
            tables=subset,
            predicates=predicate_set_id(
                self.estimator.predicates_for_subset(subset)
            ),
        )

    def _join_candidates(
        self,
        left: Candidate,
        right: Candidate,
        left_tables: frozenset,
        right_tables: frozenset,
        subset: frozenset,
    ) -> list[Candidate]:
        """All join methods for ``left JOIN right`` (left is the outer)."""
        cm = self.cost_model
        preds = self.graph.predicates_between(left_tables, right_tables)
        card_l = left.plan.est_card
        card_r = right.plan.est_card
        card_out = self.estimator.subset_cardinality(subset)
        # Effective join selectivity: keeps out(cl, cr) consistent with the
        # subset estimate at the current operating point.
        sel_eff = card_out / max(1e-9, card_l * card_r)
        # Hash/nested-loop joins stream the outer (build/materialize the
        # inner), so they deliver rows in the outer's order.
        props = self._join_properties(subset).with_order(
            left.plan.properties.order
        )
        layout = left.plan.layout.concat(right.plan.layout)
        edge_subsets = (left_tables, right_tables)
        base_cost = left.cost + right.cost
        out: list[Candidate] = []

        # ---------------------------------------------------------- hash join
        if self.options.enable_hash_join and preds:
            penalty = self._hash_penalty
            local = cm.hash_join_cost(card_l, card_r, card_out) * penalty
            plan = HashJoin(
                left.plan, right.plan, preds, props, layout,
                est_card=card_out, est_cost=base_cost + local,
            )

            def hsjn_cost(
                cl: float, cr: float, _base=base_cost, _sel=sel_eff, _pen=penalty
            ) -> float:
                return _base + cm.hash_join_cost(cl, cr, cl * cr * _sel) * _pen

            out.append(
                Candidate(plan, base_cost + local, left.order, edge_subsets, hsjn_cost)
            )
            self.plans_enumerated += 1

        # --------------------------------------------------------- merge join
        if self.options.enable_merge_join and preds:
            key_l = tuple(p.side_for(next(iter(p.tables() & left_tables))).qualified
                          for p in preds)
            key_r = tuple(p.other_side(next(iter(p.tables() & left_tables))).qualified
                          for p in preds)
            sort_l = not order_satisfies(left.order, key_l)
            sort_r = not order_satisfies(right.order, key_r)
            local = cm.merge_join_cost(card_l, card_r, card_out, sort_l, sort_r)
            outer_plan = left.plan
            inner_plan = right.plan
            if sort_l:
                outer_plan = Sort(
                    left.plan, key_l, left.plan.properties.with_order(key_l),
                    est_cost=left.cost + cm.sort_cost(card_l),
                )
            if sort_r:
                inner_plan = Sort(
                    right.plan, key_r, right.plan.properties.with_order(key_r),
                    est_cost=right.cost + cm.sort_cost(card_r),
                )
            plan = MergeJoin(
                outer_plan, inner_plan, preds, props.with_order(key_l), layout,
                est_card=card_out, est_cost=base_cost + local,
            )

            def msjn_cost(
                cl: float, cr: float,
                _base=base_cost, _sel=sel_eff, _sl=sort_l, _sr=sort_r,
            ) -> float:
                return _base + cm.merge_join_cost(cl, cr, cl * cr * _sel, _sl, _sr)

            out.append(
                Candidate(plan, base_cost + local, key_l, edge_subsets, msjn_cost)
            )
            self.plans_enumerated += 1

        # -------------------------------------------------- rescan nested loop
        if self.options.enable_rescan_nljn:
            all_preds = preds  # applied as join filters; empty = cross product
            if all_preds or self._allow_cross:
                local = cm.nljn_rescan_cost(card_l, card_r, card_out)
                temp = Temp(right.plan, est_cost=right.cost + cm.temp_cost(card_r))
                plan = NLJoin(
                    left.plan, temp, all_preds, props, layout,
                    est_card=card_out, est_cost=base_cost + local,
                    method="rescan",
                )

                def rescan_cost(
                    cl: float, cr: float, _base=base_cost, _sel=sel_eff
                ) -> float:
                    return _base + cm.nljn_rescan_cost(cl, cr, cl * cr * _sel)

                out.append(
                    Candidate(
                        plan, base_cost + local, left.order, edge_subsets, rescan_cost
                    )
                )
                self.plans_enumerated += 1

        return out

    def _index_nljn_candidates(
        self,
        left: Candidate,
        left_tables: frozenset,
        inner_alias: str,
        subset: frozenset,
    ) -> list[Candidate]:
        """Index nested-loop joins: probe an inner index once per outer row."""
        if not self.options.enable_index_nljn:
            return []
        cm = self.cost_model
        preds = self.graph.predicates_between(left_tables, {inner_alias})
        if not preds:
            return []
        inner_table_name = self.query.table_for(inner_alias).table
        out: list[Candidate] = []
        card_l = left.plan.est_card
        card_out = self.estimator.subset_cardinality(subset)
        card_r = self.estimator.filtered_cardinality(inner_alias)
        sel_eff = card_out / max(1e-9, card_l * card_r)
        base_rows = self.estimator.base_cardinality(inner_alias)
        local_preds = self.query.local_predicates_for(inner_alias)
        stats = self.catalog.statistics(inner_table_name)
        inner_pages = float(
            stats.page_count
            if stats is not None
            else self.catalog.table(inner_table_name).page_count
        )

        for pred in preds:
            inner_col = pred.side_for(inner_alias)
            index = self.catalog.index_on_column(inner_table_name, inner_col.column)
            if index is None:
                continue
            ndv = stats.ndv(inner_col.column) if stats is not None else None
            fetched_per_probe = base_rows / float(ndv) if ndv else 1.0
            residual_joins = [p for p in preds if p is not pred]
            probe_cost = cm.index_probe_cost(fetched_per_probe, inner_pages)
            inner_total_cost = card_l * probe_cost
            props = self._join_properties(subset).with_order(
                left.plan.properties.order
            )
            layout = left.plan.layout.concat(self._table_layout(inner_alias))
            inner_props = self._leaf_properties(inner_alias)
            inner_plan = IndexScan(
                inner_alias, inner_table_name, index.name,
                sarg=None, filters=list(local_preds),
                properties=inner_props,
                layout=self._table_layout(inner_alias),
                est_card=card_out, est_cost=inner_total_cost,
                correlation=pred.other_side(inner_alias),
            )
            emit_cost = card_out * cm.params.cpu_emit
            total = left.cost + inner_total_cost + emit_cost
            plan = NLJoin(
                left.plan, inner_plan, [pred] + residual_joins, props, layout,
                est_card=card_out, est_cost=total, method="index",
            )

            def nljn_cost(
                cl: float, cr: float,
                _lc=left.cost, _probe=probe_cost, _sel=sel_eff,
            ) -> float:
                return (
                    _lc
                    + cl * _probe
                    + cl * cr * _sel * cm.params.cpu_emit
                )

            out.append(
                Candidate(
                    plan, total, left.order, (left_tables, frozenset({inner_alias})),
                    nljn_cost,
                )
            )
            self.plans_enumerated += 1
        return out

    # =============================================================== pruning

    def _keep_best(self, candidates: list[Candidate], subset: frozenset) -> list[Candidate]:
        """Dominance-prune a subset's candidates and narrow validity ranges.

        A candidate is kept when no cheaper candidate provides (a prefix of)
        its output order.  For every kept *join* candidate, its per-edge
        validity ranges are narrowed against each more expensive structurally
        equivalent alternative (same pair of input-edge subsets).
        """
        if not candidates:
            return []
        candidates.sort(key=lambda c: c.cost)
        kept: list[Candidate] = []
        for cand in candidates:
            if any(
                k.cost <= cand.cost and order_satisfies(k.order, cand.order)
                for k in kept
            ):
                continue
            kept.append(cand)
            if len(kept) >= self.options.max_plans_per_subset:
                break

        if self.options.compute_validity_ranges:
            for winner in kept:
                if winner.cost_fn is None or winner.edge_subsets is None:
                    continue
                for alt in candidates:
                    if alt is winner or alt.cost_fn is None:
                        continue
                    if alt.cost < winner.cost:
                        continue
                    self._narrow_against(winner, alt)
        return kept

    def _narrow_against(self, winner: Candidate, alt: Candidate) -> None:
        """Narrow ``winner``'s edge validity ranges using pruned ``alt``."""
        w_edges = winner.edge_subsets
        a_edges = alt.edge_subsets
        if w_edges is None or a_edges is None:
            return
        if set(w_edges) != set(a_edges):
            return  # different input edges: not structurally equivalent
        est = tuple(self.estimator.subset_cardinality(e) for e in w_edges)
        for i, edge in enumerate(w_edges):
            # Map this edge onto the alternative's argument position.
            a_pos = a_edges.index(edge)

            def cost_opt(c: float, _i=i) -> float:
                cards = list(est)
                cards[_i] = c
                return winner.cost_fn(*cards)  # type: ignore[misc]

            def cost_alt(c: float, _i=i, _a=a_pos) -> float:
                cards = list(est)
                cards[_i] = c
                a_cards = [0.0, 0.0]
                a_cards[_a] = cards[_i]
                a_cards[1 - _a] = cards[1 - _i]
                return alt.cost_fn(*a_cards)  # type: ignore[misc]

            self.newton_iterations += narrow_validity_range(
                winner.plan.validity_ranges[i],
                est[i],
                cost_opt,
                cost_alt,
                max_iterations=self.options.validity_iterations,
                commit_without_inversion=self.options.commit_without_inversion,
            )

    # ============================================================== main DP

    def _partitions(self, subset: tuple) -> list[tuple[frozenset, frozenset]]:
        """(outer, inner) partitions to consider for ``subset``."""
        n = len(self.query.tables)
        mode = self.options.join_enumeration
        if mode == "auto":
            mode = "bushy" if n <= self.options.auto_bushy_limit else "leftdeep"
        subset_set = frozenset(subset)
        parts: list[tuple[frozenset, frozenset]] = []
        if mode == "leftdeep":
            for alias in subset:
                left = subset_set - {alias}
                right = frozenset({alias})
                parts.append((left, right))
                parts.append((right, left))
        else:
            elements = list(subset)
            for r in range(1, len(elements)):
                for combo in itertools.combinations(elements, r):
                    left = frozenset(combo)
                    parts.append((left, subset_set - left))
        return [
            (l, r)
            for l, r in parts
            if self.graph.connected(l, r) or self._allow_cross
        ]

    def run(self) -> PlanOp:
        """Execute the DP and return the full physical plan (Return at root)."""
        aliases = self.query.aliases
        if not aliases:
            raise OptimizerError("query has no tables")
        table: dict[frozenset, list[Candidate]] = {}
        for alias in aliases:
            table[frozenset({alias})] = self._keep_best(
                self.access_paths(alias), frozenset({alias})
            )

        for size in range(2, len(aliases) + 1):
            for combo in itertools.combinations(aliases, size):
                subset = frozenset(combo)
                if not self._allow_cross and not self.graph.is_connected_subset(combo):
                    continue
                candidates: list[Candidate] = []
                for left_tables, right_tables in self._partitions(combo):
                    left_plans = table.get(left_tables)
                    right_plans = table.get(right_tables)
                    if not left_plans or not right_plans:
                        continue
                    for pl in left_plans:
                        for pr in right_plans:
                            candidates.extend(
                                self._join_candidates(
                                    pl, pr, left_tables, right_tables, subset
                                )
                            )
                        if len(right_tables) == 1:
                            candidates.extend(
                                self._index_nljn_candidates(
                                    pl, left_tables, next(iter(right_tables)), subset
                                )
                            )
                candidates.extend(self._mv_candidates(subset))
                if not candidates:
                    raise OptimizerError(
                        f"no plan for subset {sorted(subset)} "
                        "(disconnected join graph with cross products disabled?)"
                    )
                table[subset] = self._keep_best(candidates, subset)

        full = frozenset(aliases)
        best = min(table[full], key=lambda c: c.cost)
        return self._finalize(best)

    # ============================================================ finalization

    def _finalize(self, best: Candidate) -> PlanOp:
        """Add aggregation / distinct / order-by / projection / return."""
        cm = self.cost_model
        query = self.query
        plan = best.plan

        if query.has_aggregates:
            group_keys = tuple(query.group_by)
            out_card = self.estimator.group_by_cardinality(plan.est_card, group_keys)
            layout = RowLayout(
                [k.qualified for k in group_keys]
                + [a.alias for a in query.select if isinstance(a, Aggregate)]
            )
            aggs = tuple(a for a in query.select if isinstance(a, Aggregate))
            plan = GroupBy(
                plan, group_keys, aggs,
                plan.properties.unordered(), layout,
                est_card=out_card,
                est_cost=plan.est_cost + cm.group_by_cost(plan.est_card, out_card),
            )

        if query.having:
            # Post-aggregation filter; a default selectivity per conjunct.
            out_card = max(1.0, plan.est_card * (0.33 ** len(query.having)))
            plan = HavingFilter(
                plan, query.having,
                est_card=out_card,
                est_cost=plan.est_cost + plan.est_card * cm.params.cpu_row,
            )

        output_columns = query.output_names
        if tuple(plan.layout.columns) != tuple(output_columns):
            plan = Project(
                plan, output_columns,
                est_cost=plan.est_cost + cm.project_cost(plan.est_card),
            )

        if query.distinct and not query.has_aggregates:
            # DISTINCT deduplicates the *projected* rows.
            out_card = self.estimator.distinct_cardinality(plan.est_card)
            plan = Distinct(
                plan, plan.properties.unordered(),
                est_card=out_card,
                est_cost=plan.est_cost + cm.distinct_cost(plan.est_card, out_card),
            )

        if query.order_by:
            keys = tuple(item.column for item in query.order_by)
            ascending = tuple(item.ascending for item in query.order_by)
            if not order_satisfies(plan.properties.order, keys) or not all(ascending):
                plan = Sort(
                    plan, keys, plan.properties.with_order(keys),
                    est_cost=plan.est_cost + cm.sort_cost(plan.est_card),
                    ascending=ascending,
                )

        return Return(plan, limit=query.limit)
