"""Parameter-aware estimation and validity-range re-evaluation.

Two pieces the plan cache is built on:

* :class:`PeekingSelectivity` — *bind-value peeking*: a selectivity
  estimator that resolves parameter markers to their currently bound values
  before consulting statistics, instead of falling back to the fixed default
  selectivities of :mod:`repro.stats.selectivity`.  Optimizing a
  parameterized statement with peeking tailors the plan (and its validity
  ranges) to the actual parameter values, exactly like industrial plan
  caches do on the first execution of a prepared statement.

* :func:`evaluate_plan_validity` — the cache's *admission test* (paper §3
  applied at optimization time instead of runtime): walk a previously
  optimized plan, re-estimate every guarded edge's cardinality under the
  *new* parameter values, and test the fresh estimates against the plan's
  validity ranges and CHECK ranges.  Inside every range, the pruning
  argument of §2.2 still holds — no structurally equivalent alternative the
  optimizer considered can beat this plan — so optimization can be skipped
  outright.  Any violated range means a better plan may exist and the
  caller must fall back to the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.expr.expressions import Literal, ParameterMarker
from repro.expr.predicates import Between, Comparison, Or, Predicate
from repro.optimizer.cardinality import CardinalityEstimator
from repro.plan.physical import (
    AntiJoin,
    Distinct,
    GroupBy,
    HavingFilter,
    MVScan,
    PlanOp,
    Project,
    Return,
)
from repro.stats.selectivity import SelectivityEstimator


class PeekingSelectivity(SelectivityEstimator):
    """Selectivity with bind-value peeking.

    Wraps a base estimator (the database's configured one, or the stock
    model) and substitutes bound parameter values for markers before
    delegating, so marker predicates are estimated from statistics like
    literal predicates.  Markers without a bound value keep the default
    selectivity — same behavior as the base model.
    """

    def __init__(
        self,
        params: Optional[dict[str, Any]] = None,
        base: Optional[SelectivityEstimator] = None,
    ):
        base = base if base is not None else SelectivityEstimator()
        super().__init__(base.defaults)
        self.base = base
        self.params = dict(params or {})

    # Only local predicates can carry markers; join selectivity delegates.

    def local_selectivity(self, pred: Predicate, stats) -> float:
        return self.base.local_selectivity(self.peek(pred), stats)

    def join_selectivity(self, pred, left_stats, right_stats) -> float:
        return self.base.join_selectivity(pred, left_stats, right_stats)

    def peek(self, pred: Predicate) -> Predicate:
        """``pred`` with every bound marker replaced by its value."""
        if isinstance(pred, Comparison):
            operand = self._peek_operand(pred.operand)
            if operand is not pred.operand:
                return replace(pred, operand=operand)
            return pred
        if isinstance(pred, Between):
            low = self._peek_operand(pred.low)
            high = self._peek_operand(pred.high)
            if low is not pred.low or high is not pred.high:
                return replace(pred, low=low, high=high)
            return pred
        if isinstance(pred, Or):
            return Or(tuple(self.peek(child) for child in pred.children))
        return pred

    def _peek_operand(self, operand):
        if isinstance(operand, ParameterMarker) and operand.name in self.params:
            return Literal(self.params[operand.name])
        return operand


#: Operators that change the row multiplicity of their output relative to
#: the SPJ edge signature (aggregation collapses, RETURN may be LIMIT-cut,
#: ...).  An edge fed by one of these is not re-estimable from the subset
#: cardinality model, so its range is skipped by the admission test.
_NON_SPJ = (GroupBy, Distinct, HavingFilter, Project, Return, AntiJoin, MVScan)


def estimable_edge(child: PlanOp) -> bool:
    """True when ``child``'s output cardinality is the cardinality of a
    relational edge the subset model can re-estimate."""
    return not any(isinstance(op, _NON_SPJ) for op in child.walk())


def fresh_edge_estimate(
    child: PlanOp, estimator: CardinalityEstimator
) -> Optional[float]:
    """Re-estimate the cardinality of the edge ``child`` produces, or None
    when the edge is not re-estimable (non-SPJ content below it)."""
    if not estimable_edge(child):
        return None
    tables = child.properties.tables
    if not tables:
        return None
    if len(tables) == 1:
        return estimator.filtered_cardinality(next(iter(tables)))
    return estimator.subset_cardinality(frozenset(tables))


@dataclass(frozen=True)
class RangeEvaluation:
    """One validity/CHECK range tested at a fresh estimate."""

    op_id: Optional[int]
    kind: str
    #: CHECK flavor for checkpoint ranges, "" for plain edge ranges.
    flavor: str
    #: Sorted aliases of the edge's signature (what rows flow through it).
    edge: tuple
    low: float
    high: float
    fresh_estimate: float
    inside: bool

    def to_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "flavor": self.flavor,
            "edge": list(self.edge),
            "low": self.low,
            "high": self.high,
            "fresh_estimate": self.fresh_estimate,
            "inside": self.inside,
        }


@dataclass
class AdmissionReport:
    """Outcome of re-evaluating one plan's ranges at new parameters."""

    evaluations: list

    @property
    def admitted(self) -> bool:
        """True when every evaluated range contains its fresh estimate."""
        return all(e.inside for e in self.evaluations)

    @property
    def violations(self) -> list:
        return [e for e in self.evaluations if not e.inside]

    def __len__(self) -> int:
        return len(self.evaluations)


def evaluate_plan_validity(
    plan: PlanOp, estimator: CardinalityEstimator
) -> AdmissionReport:
    """Test every non-trivial range of ``plan`` at fresh estimates.

    Covers both the per-edge validity ranges narrowed during pruning
    (present on every plan, checkpoints placed or not) and the CHECK /
    BUFCHECK ranges the placement pass copied out of them.  Ranges over
    edges the subset model cannot re-estimate are skipped — conservative in
    the paper's sense: a skipped range neither admits nor rejects, it
    simply was never narrowed for a re-estimable relational edge.
    """
    evaluations: list[RangeEvaluation] = []

    def evaluate(op: PlanOp, rng, child: PlanOp, flavor: str) -> None:
        if rng.is_trivial:
            return
        fresh = fresh_edge_estimate(child, estimator)
        if fresh is None:
            return
        evaluations.append(
            RangeEvaluation(
                op_id=op.op_id,
                kind=op.KIND,
                flavor=flavor,
                edge=tuple(sorted(child.properties.tables)),
                low=rng.low,
                high=rng.high,
                fresh_estimate=fresh,
                inside=rng.contains(fresh),
            )
        )

    for op in plan.walk():
        check_range = getattr(op, "check_range", None)
        if check_range is not None:
            evaluate(op, check_range, op.children[0], getattr(op, "flavor", ""))
            continue  # a CHECK's own validity ranges are never narrowed
        for i, rng in enumerate(op.validity_ranges):
            evaluate(op, rng, op.children[i], "")
    return AdmissionReport(evaluations)
