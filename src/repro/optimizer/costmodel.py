"""The optimizer's cost model.

Costs are unit-less "timerons": a weighted sum of modeled page I/Os and
per-row CPU work.  Two design constraints come straight from the paper:

1. **Costs are explicit functions of input cardinalities.**  Validity-range
   computation (§2.2) re-evaluates operator costs at perturbed input
   cardinalities while pruning, so every join method exposes a
   ``*_cost(outer_card, inner_card, ...)`` function rather than baking
   cardinalities in.
2. **Costs are piecewise and non-smooth.**  The paper motivates numerical
   root finding with cost functions that are "not smooth, not even always
   continuous" (e.g. a 10% cardinality increase turning a two-stage hash
   join into a three-stage one).  The sort, temp, and hash-join costs here
   have exactly those memory-spill discontinuities.

The executor's work meter charges the *same constants* (see
:mod:`repro.executor.meter`), which keeps measured execution time consistent
with modeled cost — the property that makes the reproduced figures
meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the cost model (and the work meter)."""

    #: Cost of one sequential page read/write.
    io_page: float = 1.0
    #: Random-I/O penalty multiplier (index fetches).
    random_io: float = 2.0
    #: CPU cost of processing one row in a scan or filter.
    cpu_row: float = 0.010
    #: CPU cost of emitting one join/aggregation output row.
    cpu_emit: float = 0.004
    #: CPU cost of inserting one row into a hash table.
    cpu_hash_build: float = 0.030
    #: CPU cost of probing a hash table once.
    cpu_hash_probe: float = 0.015
    #: CPU cost per row per merge level of a sort.
    cpu_sort: float = 0.006
    #: CPU cost of writing one row to a TEMP.
    cpu_temp_insert: float = 0.006
    #: CPU cost of reading one row back from a TEMP / buffered input.
    cpu_temp_scan: float = 0.002
    #: CPU cost of one CHECK counter tick (the paper's "only overhead").
    cpu_check: float = 0.0005
    #: CPU cost of one aggregation update.
    cpu_agg: float = 0.012
    #: I/O cost of traversing an index to its leaf (per probe); low because
    #: hot index pages live in the buffer pool.
    index_probe_io: float = 0.05
    #: Base I/O cost of fetching one matched row via an unclustered index,
    #: scaled by the buffer-pool miss fraction of the fetched table: probing
    #: a table much larger than the pool pays nearly the full random I/O,
    #: probing a cached table almost nothing.  This size dependence is what
    #: makes a misestimated nested-loop join over a big inner catastrophic,
    #: as in the paper's testbed.
    fetch_io: float = 0.15
    #: Fraction of fetches that miss even for a fully cached table.
    fetch_min_miss: float = 0.15
    #: Modeled buffer-pool size in pages.
    buffer_pool_pages: int = 512
    #: Rows per modeled page (flat approximation for intermediate results).
    rows_per_page: float = 64.0
    #: Pages of sort memory before a sort spills.
    sort_mem_pages: int = 128
    #: Pages of hash-join memory before the build spills.
    hash_mem_pages: int = 128
    #: Pages of temp-buffer memory before a TEMP spills.
    temp_mem_pages: int = 128
    #: Fixed cost charged per (re-)optimizer invocation.
    reopt_fixed: float = 2.0
    #: Cost per plan candidate enumerated during (re-)optimization.
    reopt_per_plan: float = 0.02

    def scaled_memory(self, factor: float) -> "CostParams":
        """A copy with all memory limits scaled (tests force spills this way)."""
        return replace(
            self,
            sort_mem_pages=max(1, int(self.sort_mem_pages * factor)),
            hash_mem_pages=max(1, int(self.hash_mem_pages * factor)),
            temp_mem_pages=max(1, int(self.temp_mem_pages * factor)),
        )


DEFAULT_COST_PARAMS = CostParams()


class CostModel:
    """Evaluates operator costs.  All ``*_cost`` functions are pure."""

    def __init__(self, params: CostParams = DEFAULT_COST_PARAMS):
        self.params = params

    # ------------------------------------------------------------------ pages

    def pages_for(self, card: float) -> float:
        """Modeled page count of an intermediate result of ``card`` rows."""
        return max(1.0, card / self.params.rows_per_page)

    # ------------------------------------------------------------------ scans

    def table_scan_cost(self, table_pages: float, table_rows: float) -> float:
        """Full scan: sequential I/O plus per-row predicate CPU."""
        p = self.params
        return table_pages * p.io_page + table_rows * p.cpu_row

    def fetch_cost_per_row(self, table_pages: float) -> float:
        """Cost of fetching one row via an index, buffer-pool aware."""
        p = self.params
        miss = p.fetch_min_miss + (1.0 - p.fetch_min_miss) * min(
            1.0, table_pages / p.buffer_pool_pages
        )
        return p.fetch_io * miss * p.random_io * p.io_page + p.cpu_row

    def index_probe_cost(
        self, matches_per_probe: float, table_pages: float
    ) -> float:
        """One equality probe of an index plus fetching the matched rows."""
        p = self.params
        return (
            p.index_probe_io * p.random_io * p.io_page
            + matches_per_probe * self.fetch_cost_per_row(table_pages)
        )

    def index_range_scan_cost(
        self, matched_rows: float, leaf_pages: float, table_pages: float
    ) -> float:
        """A range (or equality) sarg access: leaf traversal + row fetches."""
        p = self.params
        touched_leaves = max(1.0, leaf_pages * min(1.0, matched_rows / 256.0))
        return (
            p.index_probe_io * p.random_io * p.io_page
            + touched_leaves * p.io_page
            + matched_rows * self.fetch_cost_per_row(table_pages)
        )

    def mv_scan_cost(self, card: float) -> float:
        """Scanning a temp MV: it is in memory, so CPU only."""
        return card * self.params.cpu_temp_scan

    # ------------------------------------------------------- materializations

    def sort_cost(self, card: float) -> float:
        """Sort: n·log2(n) CPU, plus spill I/O when beyond sort memory.

        The spill term is a step function of the input cardinality — one of
        the discontinuities that defeats analytic root finding (paper §2.2).
        """
        p = self.params
        card = max(0.0, card)
        if card <= 0.0:
            return 0.0
        cpu = card * max(1.0, math.log2(card + 1)) * p.cpu_sort
        pages = self.pages_for(card)
        io = 0.0
        if pages > p.sort_mem_pages:
            # External sort: write + read runs once per extra merge pass.
            passes = math.ceil(math.log(pages / p.sort_mem_pages, 8)) + 1
            io = 2.0 * pages * p.io_page * passes
        return cpu + io

    def temp_cost(self, card: float) -> float:
        """Materializing ``card`` rows into a TEMP."""
        p = self.params
        card = max(0.0, card)
        cost = card * p.cpu_temp_insert
        pages = self.pages_for(card)
        if pages > p.temp_mem_pages:
            cost += pages * p.io_page  # spilled to disk
        return cost

    def temp_rescan_cost(self, card: float) -> float:
        """One rescan of a TEMP of ``card`` rows."""
        p = self.params
        cost = max(0.0, card) * p.cpu_temp_scan
        pages = self.pages_for(card)
        if pages > p.temp_mem_pages:
            cost += pages * p.io_page
        return cost

    # ------------------------------------------------------------------ joins

    def hash_join_cost(
        self, outer_card: float, inner_card: float, output_card: float
    ) -> float:
        """Hash join with the inner as build side.

        Multi-stage behaviour: when the build exceeds hash memory, both
        inputs are partitioned to disk and re-read (the paper's 2-stage →
        3-stage discontinuity).
        """
        p = self.params
        outer_card = max(0.0, outer_card)
        inner_card = max(0.0, inner_card)
        cost = (
            inner_card * p.cpu_hash_build
            + outer_card * p.cpu_hash_probe
            + max(0.0, output_card) * p.cpu_emit
        )
        build_pages = self.pages_for(inner_card)
        if build_pages > p.hash_mem_pages:
            probe_pages = self.pages_for(outer_card)
            stages = math.ceil(build_pages / p.hash_mem_pages)
            spill_fraction = min(1.0, (stages - 1) / stages + 0.5)
            cost += 2.0 * (build_pages + probe_pages) * spill_fraction * p.io_page
        return cost

    def nljn_index_cost(
        self,
        outer_card: float,
        matches_per_probe: float,
        output_card: float,
        table_pages: float,
    ) -> float:
        """Index nested-loop join: one index probe per outer row."""
        p = self.params
        outer_card = max(0.0, outer_card)
        return (
            outer_card * self.index_probe_cost(matches_per_probe, table_pages)
            + max(0.0, output_card) * p.cpu_emit
        )

    def nljn_rescan_cost(
        self, outer_card: float, inner_card: float, output_card: float
    ) -> float:
        """Naive nested-loop join: materialize the inner once (TEMP), then
        rescan it per outer row."""
        p = self.params
        outer_card = max(0.0, outer_card)
        inner_card = max(0.0, inner_card)
        return (
            self.temp_cost(inner_card)
            + outer_card * self.temp_rescan_cost(inner_card)
            + outer_card * p.cpu_row
            + max(0.0, output_card) * p.cpu_emit
        )

    def merge_join_cost(
        self,
        outer_card: float,
        inner_card: float,
        output_card: float,
        sort_outer: bool,
        sort_inner: bool,
    ) -> float:
        """Sort-merge join, including any sort enforcers on its inputs.

        The enforcers are charged here so that the method's cost remains a
        pure function of the (shared) input-edge cardinalities, which is what
        the validity-range analysis differentiates.
        """
        p = self.params
        outer_card = max(0.0, outer_card)
        inner_card = max(0.0, inner_card)
        cost = (outer_card + inner_card) * p.cpu_row + max(0.0, output_card) * p.cpu_emit
        if sort_outer:
            cost += self.sort_cost(outer_card)
        if sort_inner:
            cost += self.sort_cost(inner_card)
        return cost

    # ------------------------------------------------------------- aggregates

    def group_by_cost(self, input_card: float, output_card: float) -> float:
        p = self.params
        return max(0.0, input_card) * p.cpu_agg + max(0.0, output_card) * p.cpu_emit

    def distinct_cost(self, input_card: float, output_card: float) -> float:
        p = self.params
        return max(0.0, input_card) * p.cpu_hash_probe + max(0.0, output_card) * p.cpu_emit

    def project_cost(self, card: float) -> float:
        return max(0.0, card) * self.params.cpu_emit

    def check_cost(self, card: float) -> float:
        """The CHECK operator's counting overhead."""
        return max(0.0, card) * self.params.cpu_check

    # ---------------------------------------------------------- optimization

    def reoptimization_cost(self, plans_enumerated: int) -> float:
        """Cost charged for one (re-)optimizer invocation (context switch +
        plan enumeration) — the small gap in the paper's Figure 12."""
        p = self.params
        return p.reopt_fixed + plans_enumerated * p.reopt_per_plan
