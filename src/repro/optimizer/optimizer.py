"""Top-level optimizer facade.

Wraps the cardinality estimator and the DP enumerator into a single call and
reports enumeration statistics (used to charge re-optimization overhead, the
small gap in the paper's Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.feedback import CardinalityFeedback
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.costmodel import DEFAULT_COST_PARAMS, CostModel, CostParams
from repro.optimizer.enumeration import OptimizerOptions, PlanEnumerator
from repro.plan.logical import Query
from repro.plan.physical import PlanOp, number_plan
from repro.stats.selectivity import SelectivityEstimator
from repro.storage.catalog import Catalog


@dataclass
class OptimizationResult:
    """A physical plan plus how much work optimization did."""

    plan: PlanOp
    plans_enumerated: int
    estimator: CardinalityEstimator
    #: Fig. 5 sensitivity-probe iterations spent on validity ranges.
    newton_iterations: int = 0

    @property
    def estimated_cost(self) -> float:
        return self.plan.est_cost


class Optimizer:
    """Cost-based query optimizer with POP hooks.

    The ``feedback`` argument injects actual cardinalities observed during
    previous partial executions of the same statement; temp MVs registered in
    the catalog are considered automatically (both are the POP §2.1 feedback
    loop).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        options: Optional[OptimizerOptions] = None,
        selectivity: Optional[SelectivityEstimator] = None,
    ):
        self.catalog = catalog
        self.cost_model = CostModel(cost_params)
        self.options = options if options is not None else OptimizerOptions()
        self.selectivity = selectivity

    def optimize(
        self,
        query: Query,
        feedback: Optional[CardinalityFeedback] = None,
        selectivity: Optional[SelectivityEstimator] = None,
    ) -> OptimizationResult:
        """Produce the cheapest plan for ``query`` under current knowledge.

        ``selectivity`` overrides the optimizer's configured selectivity
        model for this one call — the plan cache passes a bind-value peeking
        estimator here so parameterized statements are planned for their
        actual first-execution values.
        """
        estimator = CardinalityEstimator(
            self.catalog,
            query,
            feedback=feedback,
            selectivity=selectivity if selectivity is not None else self.selectivity,
        )
        enumerator = PlanEnumerator(
            self.catalog, query, estimator, self.cost_model, self.options
        )
        plan = enumerator.run()
        number_plan(plan)
        if self.options.strict_analysis:
            # Imported here: repro.analysis.rules itself imports optimizer
            # modules, so a module-level import would be cyclic.
            from repro.analysis.plan_lint import LintContext, assert_plan_clean

            assert_plan_clean(
                plan,
                LintContext(catalog=self.catalog, cost_model=self.cost_model),
                where="optimized plan",
            )
        return OptimizationResult(
            plan=plan,
            plans_enumerated=enumerator.plans_enumerated,
            estimator=estimator,
            newton_iterations=enumerator.newton_iterations,
        )
