"""In-memory row-store tables.

A :class:`Table` stores rows as tuples in insertion order; the row id (rid) of
a row is its position in the store.  Rids are stable because the engine is
append-only (the reproduction is read-only after load, matching the paper's
experimental setting).  Each table models a page count derived from its row
width so that the cost model and the executor's work meter can charge I/O in
page units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import SchemaError
from repro.common.values import DataType, coerce

#: Modeled page size in bytes (used only for costing, not physical layout).
PAGE_SIZE = 4096

#: Modeled per-column byte widths for page-count estimation.
_TYPE_WIDTH = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.DATE: 8,
    DataType.STR: 24,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column of a table."""

    name: str
    dtype: DataType

    @property
    def width(self) -> int:
        """Modeled storage width in bytes."""
        return _TYPE_WIDTH[self.dtype]


@dataclass
class Schema:
    """An ordered collection of columns with unique names."""

    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}

    @classmethod
    def of(cls, *specs: tuple[str, str] | Column) -> "Schema":
        """Build a schema from ``("name", "type")`` pairs or columns."""
        cols = [
            spec if isinstance(spec, Column) else Column(spec[0], DataType.parse(spec[1]))
            for spec in specs
        ]
        return cls(cols)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def index_of(self, name: str) -> int:
        """Position of the column ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"no column named {name!r}") from exc

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def row_width(self) -> int:
        """Modeled row width in bytes."""
        return sum(c.width for c in self.columns) or 1


class Table:
    """An append-only in-memory table.

    Rows are plain tuples ordered as the schema.  ``rows[rid]`` is the row
    with that rid.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.rows: list[tuple] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, {self.row_count} rows)"

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def page_count(self) -> int:
        """Modeled number of pages the table occupies (at least 1)."""
        rows_per_page = max(1, PAGE_SIZE // self.schema.row_width)
        return max(1, -(-self.row_count // rows_per_page))

    def insert(self, values: Sequence[Any]) -> int:
        """Append one row (coercing values to column types); returns its rid."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"{self.name}: expected {len(self.schema)} values, got {len(values)}"
            )
        row = tuple(
            coerce(v, col.dtype) for v, col in zip(values, self.schema.columns)
        )
        self.rows.append(row)
        return len(self.rows) - 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for values in rows:
            self.insert(values)

    def load_raw(self, rows: list[tuple]) -> None:
        """Bulk-append pre-coerced tuples (generator fast path, no validation)."""
        self.rows.extend(rows)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rid, row)`` pairs in rid order."""
        return enumerate(self.rows)

    def fetch(self, rid: int) -> tuple:
        return self.rows[rid]

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in rid order (used by RUNSTATS)."""
        pos = self.schema.index_of(name)
        return [row[pos] for row in self.rows]
