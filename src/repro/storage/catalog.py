"""The catalog: tables, indexes, statistics, and temporary materialized views.

The catalog is the single registry both the optimizer and the executor consult.
Temporary materialized views (temp MVs) are how POP exposes intermediate
results of a partially executed query to the re-optimization step (paper
§2.3): a completed materialization point is *promoted* to a temp MV whose
catalog statistics carry the exact observed cardinality; the optimizer then
considers scanning it as a normal, cost-compared alternative.  Temp MVs are
transient — :meth:`Catalog.clear_temp_mvs` removes them when the query
finishes (the paper's "cleanup" step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import CatalogError
from repro.storage.index import HashIndex, Index, SortedIndex
from repro.storage.table import Schema, Table


@dataclass
class TempMV:
    """A temporary materialized view promoted from an intermediate result.

    ``signature`` identifies *what* the rows represent: the set of base-table
    aliases joined, the set of predicate ids already applied, and the output
    columns (qualified names, in row order).  MV matching during
    re-optimization is an exact match on tables and predicates plus a
    column-coverage check.
    """

    name: str
    tables: frozenset
    predicate_ids: frozenset
    columns: tuple
    rows: list[tuple]
    #: Exact observed cardinality — this is the MV's "catalog statistic".
    cardinality: int = field(init=False)
    #: Sort order of the rows, as a tuple of qualified column names
    #: (empty when unordered); lets re-optimization reuse a SORT output
    #: without re-sorting.
    order: tuple = ()

    def __post_init__(self) -> None:
        self.cardinality = len(self.rows)


class Catalog:
    """Registry of tables, their indexes, statistics, and temp MVs."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}
        self._indexes_by_table: dict[str, list[Index]] = {}
        # table name -> TableStatistics (duck-typed; see repro.stats)
        self._stats: dict[str, Any] = {}
        self._temp_mvs: dict[str, TempMV] = {}
        self._mv_counter = 0

    # ------------------------------------------------------------------ tables

    def create_table(self, name: str, schema: Schema) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name.lower(), schema)
        self._tables[key] = table
        self._indexes_by_table[key] = []
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        for index in self._indexes_by_table.pop(key, []):
            self._indexes.pop(index.name, None)
        self._stats.pop(key, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"no table named {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # ----------------------------------------------------------------- indexes

    def create_index(
        self, name: str, table_name: str, column: str, kind: str = "sorted"
    ) -> Index:
        """Create a ``"hash"`` or ``"sorted"`` index on ``table.column``."""
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        if kind == "hash":
            index: Index = HashIndex(key, table, column)
        elif kind == "sorted":
            index = SortedIndex(key, table, column)
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        self._indexes[key] = index
        self._indexes_by_table[table.name].append(index)
        return index

    def indexes_on(self, table_name: str) -> list[Index]:
        return list(self._indexes_by_table.get(table_name.lower(), []))

    def index_on_column(self, table_name: str, column: str) -> Optional[Index]:
        """An index whose key is exactly ``column`` (sorted preferred), or None."""
        candidates = [
            ix for ix in self.indexes_on(table_name) if ix.column == column
        ]
        if not candidates:
            return None
        for ix in candidates:
            if ix.supports_range:
                return ix
        return candidates[0]

    def rebuild_indexes(self, table_name: str) -> None:
        """Rebuild all indexes of a table after a bulk load."""
        for index in self.indexes_on(table_name):
            index.rebuild()

    # ------------------------------------------------------------- statistics

    def set_statistics(self, table_name: str, stats: Any) -> None:
        self.table(table_name)  # validate existence
        self._stats[table_name.lower()] = stats

    def statistics(self, table_name: str) -> Any:
        """Statistics for a table, or ``None`` when RUNSTATS never ran."""
        return self._stats.get(table_name.lower())

    # ---------------------------------------------------------------- temp MVs

    def register_temp_mv(
        self,
        tables: frozenset,
        predicate_ids: frozenset,
        columns: tuple,
        rows: list[tuple],
        order: tuple = (),
    ) -> TempMV:
        """Promote an intermediate result to a temp MV (paper §2.3)."""
        self._mv_counter += 1
        mv = TempMV(
            name=f"__tempmv_{self._mv_counter}",
            tables=tables,
            predicate_ids=predicate_ids,
            columns=columns,
            rows=rows,
            order=order,
        )
        self._temp_mvs[mv.name] = mv
        return mv

    def temp_mvs(self) -> list[TempMV]:
        return list(self._temp_mvs.values())

    def temp_mv(self, name: str) -> TempMV:
        try:
            return self._temp_mvs[name]
        except KeyError as exc:
            raise CatalogError(f"no temp MV named {name!r}") from exc

    def clear_temp_mvs(self) -> None:
        """The cleanup step: drop all temp MVs after query completion."""
        self._temp_mvs.clear()
