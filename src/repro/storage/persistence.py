"""Saving and loading databases.

A database directory contains ``schema.json`` (tables, column types, index
definitions) and one JSON-lines file per table under ``data/``.  All value
types round-trip exactly: INT/FLOAT/STR natively, DATE as its day number,
NULL as JSON ``null``.  Statistics are re-collected on load (they derive
from the data).

Writes are crash-safe, independent of the WAL layer (:mod:`repro.storage.wal`
protects *transactions*; this module protects *whole-database exports*):

* every file is written to a ``.tmp`` sibling, flushed, fsynced, and
  atomically installed with ``os.replace`` — a crash mid-save leaves the
  previous export intact, never a torn hybrid;
* the data files land first and ``schema.json`` last, so the manifest is
  the commit point: a directory with a fresh manifest always has all the
  data files the manifest names;
* format version 2 adds a CRC32 checksum per data file to the manifest;
  the loader verifies them, so silent corruption fails loudly as a
  :class:`PersistenceError` instead of loading wrong rows.  Version-1
  directories (no checksums) still load.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Optional

from repro.common.errors import ReproError
from repro.core.database import Database

_SCHEMA_FILE = "schema.json"
_DATA_DIR = "data"
#: Current writer version.  ``2`` = atomic install + per-file checksums.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class PersistenceError(ReproError):
    """The on-disk database is missing or malformed."""


def _atomic_write(path: str, data: bytes) -> None:
    """temp file + flush + fsync + ``os.replace``: all-or-nothing install."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _fsync_directory(directory: str) -> None:
    """Best-effort directory-entry fsync (not available on all platforms)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_database(db: Database, path: str) -> None:
    """Write ``db``'s schema, indexes, and data under directory ``path``.

    Atomic per file, with the manifest written last as the commit point;
    re-saving over an existing export can never leave it torn.
    """
    data_dir = os.path.join(path, _DATA_DIR)
    os.makedirs(data_dir, exist_ok=True)
    checksums: dict[str, int] = {}
    for table in db.catalog.tables():
        payload = b"".join(
            json.dumps(list(row)).encode("utf-8") + b"\n" for row in table.rows
        )
        checksums[table.name] = zlib.crc32(payload)
        _atomic_write(os.path.join(data_dir, f"{table.name}.jsonl"), payload)
    _fsync_directory(data_dir)
    schema = {
        "version": _FORMAT_VERSION,
        "tables": {
            table.name: [[c.name, c.dtype.value] for c in table.schema]
            for table in db.catalog.tables()
        },
        "checksums": checksums,
        "indexes": [
            {
                "name": index.name,
                "table": index.table.name,
                "column": index.column,
                "kind": "sorted" if index.supports_range else "hash",
            }
            for table in db.catalog.tables()
            for index in db.catalog.indexes_on(table.name)
        ],
    }
    _atomic_write(
        os.path.join(path, _SCHEMA_FILE),
        json.dumps(schema, indent=2, sort_keys=True).encode("utf-8"),
    )
    _fsync_directory(path)


def load_database(
    path: str,
    runstats: bool = True,
    db: Optional[Database] = None,
    **db_kwargs,
) -> Database:
    """Load a database previously written by :func:`save_database`.

    Accepts format versions 1 (legacy, no checksums) and 2; a version-2
    data file whose checksum mismatches the manifest raises
    :class:`PersistenceError` rather than loading silently corrupt rows.
    """
    schema_path = os.path.join(path, _SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise PersistenceError(f"no database found at {path!r}")
    with open(schema_path) as f:
        schema = json.load(f)
    version = schema.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported database format version {version!r}"
        )
    checksums = schema.get("checksums", {})
    database = db if db is not None else Database(**db_kwargs)
    for table_name, columns in schema["tables"].items():
        database.create_table(table_name, [tuple(c) for c in columns])
        file_path = os.path.join(path, _DATA_DIR, f"{table_name}.jsonl")
        if not os.path.exists(file_path):
            raise PersistenceError(f"missing data file for table {table_name!r}")
        with open(file_path, "rb") as f:
            payload = f.read()
        if version >= 2 and table_name in checksums:
            if zlib.crc32(payload) != checksums[table_name]:
                raise PersistenceError(
                    f"checksum mismatch in data file for table {table_name!r}"
                )
        rows = []
        for line in payload.decode("utf-8").splitlines():
            if line.strip():
                rows.append(tuple(json.loads(line)))
        database.catalog.table(table_name).load_raw(rows)
    for index in schema.get("indexes", []):
        database.create_index(
            index["name"], index["table"], index["column"], index["kind"]
        )
    if runstats:
        database.runstats()
    return database
