"""Saving and loading databases.

A database directory contains ``schema.json`` (tables, column types, index
definitions) and one JSON-lines file per table under ``data/``.  All value
types round-trip exactly: INT/FLOAT/STR natively, DATE as its day number,
NULL as JSON ``null``.  Statistics are re-collected on load (they derive
from the data).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.common.errors import ReproError
from repro.core.database import Database

_SCHEMA_FILE = "schema.json"
_DATA_DIR = "data"
_FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """The on-disk database is missing or malformed."""


def save_database(db: Database, path: str) -> None:
    """Write ``db``'s schema, indexes, and data under directory ``path``."""
    os.makedirs(os.path.join(path, _DATA_DIR), exist_ok=True)
    schema = {
        "version": _FORMAT_VERSION,
        "tables": {
            table.name: [[c.name, c.dtype.value] for c in table.schema]
            for table in db.catalog.tables()
        },
        "indexes": [
            {
                "name": index.name,
                "table": index.table.name,
                "column": index.column,
                "kind": "sorted" if index.supports_range else "hash",
            }
            for table in db.catalog.tables()
            for index in db.catalog.indexes_on(table.name)
        ],
    }
    with open(os.path.join(path, _SCHEMA_FILE), "w") as f:
        json.dump(schema, f, indent=2, sort_keys=True)
    for table in db.catalog.tables():
        file_path = os.path.join(path, _DATA_DIR, f"{table.name}.jsonl")
        with open(file_path, "w") as f:
            for row in table.rows:
                f.write(json.dumps(list(row)) + "\n")


def load_database(
    path: str,
    runstats: bool = True,
    db: Optional[Database] = None,
    **db_kwargs,
) -> Database:
    """Load a database previously written by :func:`save_database`."""
    schema_path = os.path.join(path, _SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise PersistenceError(f"no database found at {path!r}")
    with open(schema_path) as f:
        schema = json.load(f)
    version = schema.get("version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported database format version {version!r}"
        )
    database = db if db is not None else Database(**db_kwargs)
    for table_name, columns in schema["tables"].items():
        database.create_table(table_name, [tuple(c) for c in columns])
        file_path = os.path.join(path, _DATA_DIR, f"{table_name}.jsonl")
        if not os.path.exists(file_path):
            raise PersistenceError(f"missing data file for table {table_name!r}")
        rows = []
        with open(file_path) as f:
            for line in f:
                if line.strip():
                    rows.append(tuple(json.loads(line)))
        database.catalog.table(table_name).load_raw(rows)
    for index in schema.get("indexes", []):
        database.create_index(
            index["name"], index["table"], index["column"], index["kind"]
        )
    if runstats:
        database.runstats()
    return database
