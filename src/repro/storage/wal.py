"""Crash-safe durability: a checksummed WAL and atomic checkpoints.

The write-ahead log is the commit point of the transaction layer
(:mod:`repro.txn`): a transaction is durable exactly when its commit
record's ``fsync`` has returned.  The format is deliberately boring —
every record is::

    4-byte big-endian payload length
    4-byte big-endian CRC32 of the payload
    payload: UTF-8 JSON {"txn": id, "epoch": E, "writes": {table: [rows]}}

so replay needs no index and torn tails are self-evident: a record whose
header is short, whose payload is short, or whose CRC mismatches marks
the end of the committed prefix, and :func:`read_wal_records` truncates
the file back to the last good record (re-running recovery is therefore
idempotent — the second pass sees only whole records).

Checkpoints bound replay time.  A checkpoint is one JSON file carrying
the full table state plus the epoch it captured, written to a ``.tmp``
sibling, fsynced, and atomically installed with ``os.replace`` — a crash
at any point leaves either the old checkpoint or the new one, never a
torn hybrid (leftover ``.tmp`` files are swept by :func:`recover`).  The
body rides under its own CRC32 so silent corruption is detected rather
than loaded.

Crash injection rides a single optional hook so the storage layer never
imports the fault machinery: ``crash_hook(point, size, write_partial)``
is called at every named point (``wal.append``, ``wal.fsync``,
``wal.durable``, ``checkpoint.write``, ``checkpoint.fsync``,
``checkpoint.rename``, ``checkpoint.done``).  The hook may return
``None`` (continue), raise (a simulated process death, or an ``OSError``
standing in for a failed fsync), or call ``write_partial(k)`` first to
leave ``k`` bytes of the pending record behind — a torn write.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import WalError

__all__ = [
    "WAL_FILE",
    "CHECKPOINT_FILE",
    "WalRecord",
    "WriteAheadLog",
    "read_wal_records",
    "write_checkpoint",
    "read_checkpoint",
    "recover",
    "RecoveredState",
]

WAL_FILE = "wal.log"
CHECKPOINT_FILE = "checkpoint.json"

#: ``struct`` layout of the record header: payload length, payload CRC32.
_HEADER = struct.Struct(">II")

#: Crash-hook type: ``(point, size, write_partial) -> None``.
CrashHook = Callable[[str, int, Callable[[int], None]], None]


def _no_partial(_k: int) -> None:
    """Placeholder ``write_partial`` for points with no pending bytes."""


@dataclass(frozen=True)
class WalRecord:
    """One committed transaction as logged: id, epoch, staged writes."""

    txn_id: int
    epoch: int
    #: table name -> list of row tuples (JSON-safe values, as stored).
    writes: dict

    def encode(self) -> bytes:
        payload = json.dumps(
            {
                "txn": self.txn_id,
                "epoch": self.epoch,
                "writes": {
                    name: [list(row) for row in rows]
                    for name, rows in self.writes.items()
                },
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "WalRecord":
        obj = json.loads(payload.decode("utf-8"))
        return cls(
            txn_id=obj["txn"],
            epoch=obj["epoch"],
            writes={
                name: [tuple(row) for row in rows]
                for name, rows in obj["writes"].items()
            },
        )


class WriteAheadLog:
    """Append-only commit log with fsync-at-commit and torn-tail rollback.

    Not thread-safe by itself: the transaction manager serializes appends
    under its epoch lock (the WAL is part of the commit critical section).
    """

    def __init__(self, directory: str, crash_hook: Optional[CrashHook] = None):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, WAL_FILE)
        self.crash_hook = crash_hook
        self._file = open(self.path, "ab")
        self._poisoned: Optional[str] = None
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0

    # ----------------------------------------------------------------- hooks

    def _hook(self, point: str, record: bytes = b"") -> None:
        if self.crash_hook is None:
            return

        def write_partial(k: int) -> None:
            self._file.write(record[:k])
            self._file.flush()

        self.crash_hook(point, len(record), write_partial)

    # ---------------------------------------------------------------- append

    def append_commit(self, record: WalRecord) -> int:
        """Durably append one commit record; returns its encoded size.

        The record is written, flushed, and fsynced before return — when
        this method returns, the transaction survives a crash.  A failed
        fsync rolls the file back to the pre-append offset so the
        unsynced record can never replay; if even the rollback fails the
        log is poisoned and every further commit refuses with
        :class:`~repro.common.errors.WalError`.
        """
        if self._poisoned is not None:
            raise WalError(
                f"write-ahead log is poisoned ({self._poisoned}); "
                "the database must be re-opened to recover"
            )
        encoded = record.encode()
        start = self._file.tell()
        self._hook("wal.append", encoded)
        try:
            self._file.write(encoded)
            self._file.flush()
            self._hook("wal.fsync", encoded)
            os.fsync(self._file.fileno())
        except OSError as exc:
            try:
                self._file.truncate(start)
                self._file.seek(start)
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:
                self._poisoned = f"fsync failed and rollback failed: {exc}"
                raise WalError(self._poisoned) from exc
            raise WalError(f"wal append failed: {exc}") from exc
        self._hook("wal.durable", encoded)
        self.records_appended += 1
        self.bytes_appended += len(encoded)
        self.fsyncs += 1
        return len(encoded)

    def reset(self) -> None:
        """Truncate the log to empty (called after a checkpoint installs)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass


# ----------------------------------------------------------------- replay


def read_wal_records(path: str) -> tuple[list[WalRecord], int, int]:
    """Parse a WAL file: ``(records, good_bytes, total_bytes)``.

    Stops at the first torn record (short header, short payload, CRC
    mismatch, or undecodable payload): everything before it is the
    committed prefix, everything after is discarded by the caller.
    """
    if not os.path.exists(path):
        return [], 0, 0
    with open(path, "rb") as f:
        data = f.read()
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or corrupt record
        try:
            records.append(WalRecord.decode_payload(payload))
        except (ValueError, KeyError):
            break  # checksummed garbage (should not happen; stop anyway)
        offset = end
    return records, offset, total


# ------------------------------------------------------------- checkpoints


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (not available everywhere)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_checkpoint(
    directory: str,
    state: dict,
    crash_hook: Optional[CrashHook] = None,
) -> int:
    """Atomically install ``state`` as the checkpoint; returns bytes written.

    ``state`` must be JSON-serializable (the transaction manager passes
    ``{"epoch": E, "tables": {...}}``).  Temp file + fsync +
    ``os.replace``: a crash at any point leaves the previous checkpoint
    intact or the new one fully installed.
    """
    body = json.dumps(state, separators=(",", ":"), sort_keys=True)
    content = json.dumps(
        {"crc": zlib.crc32(body.encode("utf-8")), "state": state},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    final = os.path.join(directory, CHECKPOINT_FILE)
    tmp = final + ".tmp"

    def hook(point: str, record: bytes = b"", writer=None) -> None:
        if crash_hook is None:
            return
        crash_hook(point, len(record), writer if writer is not None else _no_partial)

    with open(tmp, "wb") as f:

        def write_partial(k: int) -> None:
            f.write(content[:k])
            f.flush()

        hook("checkpoint.write", content, write_partial)
        f.write(content)
        f.flush()
        hook("checkpoint.fsync", content)
        os.fsync(f.fileno())
    hook("checkpoint.rename")
    os.replace(tmp, final)
    _fsync_directory(directory)
    hook("checkpoint.done")
    return len(content)


def read_checkpoint(directory: str) -> Optional[dict]:
    """The installed checkpoint's state, or ``None`` when there is none.

    A CRC mismatch is a hard :class:`~repro.common.errors.WalError`:
    ``os.replace`` is atomic, so a bad checksum means silent corruption,
    not a crash artifact — loading it would be a wrong-answer bug.
    """
    path = os.path.join(directory, CHECKPOINT_FILE)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as f:
            obj = json.load(f)
    except (OSError, ValueError) as exc:
        raise WalError(f"unreadable checkpoint {path!r}: {exc}") from exc
    body = json.dumps(obj.get("state"), separators=(",", ":"), sort_keys=True)
    if zlib.crc32(body.encode("utf-8")) != obj.get("crc"):
        raise WalError(f"checkpoint checksum mismatch in {path!r}")
    return obj["state"]


# ------------------------------------------------------------------ recover


@dataclass
class RecoveredState:
    """Everything recovery-on-open found on disk."""

    checkpoint: Optional[dict]
    records: list = field(default_factory=list)
    truncated_bytes: int = 0
    removed_temp_files: list = field(default_factory=list)


def recover(directory: str) -> RecoveredState:
    """Recovery-on-open: sweep temp files, load the checkpoint, replay
    the committed WAL suffix, truncate the torn tail.

    Records with ``epoch <= checkpoint epoch`` are dropped here (they are
    already folded into the checkpoint), which together with the physical
    truncation makes replay idempotent: running :func:`recover` twice
    yields identical state.
    """
    os.makedirs(directory, exist_ok=True)
    removed = []
    for name in sorted(os.listdir(directory)):
        if ".tmp" in name:
            try:
                os.remove(os.path.join(directory, name))
                removed.append(name)
            except OSError:
                pass
    checkpoint = read_checkpoint(directory)
    base_epoch = checkpoint["epoch"] if checkpoint is not None else 0
    wal_path = os.path.join(directory, WAL_FILE)
    records, good_bytes, total_bytes = read_wal_records(wal_path)
    truncated = total_bytes - good_bytes
    if truncated and os.path.exists(wal_path):
        with open(wal_path, "r+b") as f:
            f.truncate(good_bytes)
            f.flush()
            os.fsync(f.fileno())
    return RecoveredState(
        checkpoint=checkpoint,
        records=[r for r in records if r.epoch > base_epoch],
        truncated_bytes=truncated,
        removed_temp_files=removed,
    )
