"""File-backed spill storage for memory-constrained operators.

When the memory governor (:mod:`repro.governor`) squeezes an operator's
grant below its footprint, the operator *degrades instead of dying*: sort
runs, hash-join partitions, and TEMP overflows are written to disk through
this module and read back in bounded-memory passes.

Two classes:

* :class:`SpillFile` — one append-then-read file of row tuples (a sort
  run, a join partition, a TEMP overflow).  Rows are written in pickled
  batches; reads stream batch by batch so memory stays bounded by the
  batch size, not the file size.
* :class:`SpillManager` — the per-execution registry every spill file is
  created through.  It owns the temp directory, charges all spill I/O to
  the :class:`~repro.executor.meter.WorkMeter` category ``"spill"`` (so
  degraded execution is visible in the same cost currency as everything
  else), feeds the ``governor.spill_*`` metrics, and guarantees cleanup:
  ``close_all()`` runs in the executor's ``finally`` block, on success and
  abort paths alike.

The ``spill-lifecycle`` contract rule (:mod:`repro.analysis.contract`)
enforces the lifecycle statically: spill files may only be constructed
through a manager, and ``run_plan`` must release the manager in a
``finally`` block.
"""

from __future__ import annotations

import io
import os
import pickle
import shutil
import tempfile
import threading
from typing import Iterable, Iterator, Optional

from repro.common.errors import ExecutionError
from repro.common.locking import maybe_witness

#: Rows per pickled batch: large enough to amortize pickling overhead,
#: small enough that one in-flight batch never dominates the grant.
BATCH_ROWS = 512


class SpillFile:
    """One spill file: write rows in order, then stream them back.

    Instances are created by :meth:`SpillManager.create` only (contract
    rule ``spill-lifecycle``); the manager charges I/O and guarantees the
    file is closed and deleted when the execution attempt ends, whichever
    way it ends.
    """

    def __init__(self, manager: "SpillManager", path: str, category: str, label: str):
        self._manager = manager
        self.path = path
        #: WorkMeter/metrics label: "sort", "hash", "temp", ...
        self.category = category
        #: Human-readable name for traces ("run-3", "build-part-2.1", ...).
        self.label = label
        self.rows_written = 0
        self.bytes_written = 0
        self.closed = False
        self.deleted = False
        self._writer: Optional[io.BufferedWriter] = None
        self._pending: list[tuple] = []

    # ------------------------------------------------------------- writing

    def append(self, row: tuple) -> None:
        """Append one row; rows are batched internally, so row-at-a-time
        writers (TEMP overflow, partition routing) still amortize I/O."""
        if self.closed:
            raise ExecutionError(f"spill file {self.label} written after close")
        self._pending.append(row)
        if len(self._pending) >= BATCH_ROWS:
            self._flush_pending()

    def append_batch(self, rows: list[tuple]) -> None:
        """Append many rows at once (order-preserving).

        Equivalent to calling :meth:`append` row by row — including the
        internal flush boundaries: full ``BATCH_ROWS`` chunks are flushed
        as they accumulate and the remainder stays pending, so
        ``rows_written`` and :attr:`row_count` agree with a row-at-a-time
        writer after every call (the PR-5 pending-batch accounting bug
        class), readers see the same bounded chunk sizes, and the metered
        spill I/O is charged at the same points.
        """
        if self.closed:
            raise ExecutionError(f"spill file {self.label} written after close")
        pending = self._pending
        pending.extend(rows)
        while len(pending) >= BATCH_ROWS:
            chunk = pending[:BATCH_ROWS]
            del pending[:BATCH_ROWS]
            self._write_chunk(chunk)

    def write_rows(self, rows: Iterable[tuple]) -> int:
        """Append ``rows`` (order-preserving); returns the count written."""
        count = 0
        for row in rows:
            self.append(row)
            count += 1
        return count

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._write_chunk(batch)

    def _write_chunk(self, batch: list[tuple]) -> None:
        if self._writer is None:
            self._writer = open(self.path, "ab")
        payload = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        self._writer.write(len(payload).to_bytes(8, "big"))
        self._writer.write(payload)
        self.rows_written += len(batch)
        self.bytes_written += len(payload) + 8
        self._manager._note_write(self, len(batch))

    @property
    def row_count(self) -> int:
        """Rows appended so far, including any still-buffered batch —
        use this for emptiness checks, not ``rows_written`` (which only
        counts flushed rows)."""
        return self.rows_written + len(self._pending)

    # ------------------------------------------------------------- reading

    def rows(self) -> Iterator[tuple]:
        """Stream the rows back in write order (restartable: each call is
        a fresh pass over the file, and each pass charges its read I/O)."""
        if self.deleted:
            raise ExecutionError(f"spill file {self.label} read after delete")
        self._sync()
        if self.rows_written == 0:
            return
        with open(self.path, "rb") as reader:
            while True:
                header = reader.read(8)
                if not header:
                    break
                payload = reader.read(int.from_bytes(header, "big"))
                batch = pickle.loads(payload)
                self._manager._note_read(self, len(batch))
                yield from batch

    def _sync(self) -> None:
        """Make buffered writes visible to readers without closing."""
        self._flush_pending()
        if self._writer is not None:
            self._writer.flush()

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Stop writing (idempotent; the file remains readable)."""
        self._flush_pending()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self.closed = True

    def delete(self) -> None:
        """Close and remove the backing file (idempotent)."""
        self._pending = []  # never pay write I/O for rows being discarded
        self.close()
        if not self.deleted:
            self.deleted = True
            try:
                os.unlink(self.path)
            except OSError:
                pass  # the manager removes the whole directory anyway


class SpillManager:
    """Creates, accounts for, and cleans up every spill file of one
    execution attempt.

    ``meter`` / ``cost_params`` translate spilled rows into modeled pages
    and charge them to the ``"spill"`` WorkMeter category; ``metrics`` /
    ``tracer`` (both optional, :mod:`repro.obs`) receive ``governor.*``
    counters and ``spill.*`` events.
    """

    def __init__(self, meter, cost_params, tracer=None, metrics=None):
        self.meter = meter
        self.cost_params = cost_params
        self.tracer = tracer
        self.metrics = metrics
        # Ranked "spill" — last in the repo lock order (repro.common.locking).
        # It guards bookkeeping only; meter charges and metrics/tracer
        # emission happen *after* it is released, so no spill->obs
        # acquisition edge exists.
        self._lock = maybe_witness(threading.Lock(), "spill")
        self._dir: Optional[str] = None  # guarded-by: _lock
        self._files: list[SpillFile] = []  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self.released = False  # guarded-by: _lock
        #: Cumulative accounting, kept past :meth:`close_all` so drivers
        #: can report per-attempt spill volume after cleanup.
        self.files_created = 0  # guarded-by: _lock
        self.rows_spilled = 0  # guarded-by: _lock
        self.rows_read_back = 0  # guarded-by: _lock
        self.bytes_spilled = 0  # guarded-by: _lock
        self.pages_spilled = 0.0  # guarded-by: _lock
        self.categories: dict[str, float] = {}  # guarded-by: _lock

    # ------------------------------------------------------------- creation

    def create(self, category: str, label: Optional[str] = None) -> SpillFile:
        """A new empty spill file charged to ``category``."""
        with self._lock:
            if self.released:
                raise ExecutionError("spill manager used after release")
            if self._dir is None:
                self._dir = tempfile.mkdtemp(prefix="repro-spill-")
            self._seq += 1
            name = label if label is not None else f"{category}-{self._seq}"
            path = os.path.join(self._dir, f"{self._seq:06d}-{category}")
            spill = SpillFile(self, path, category, name)
            self._files.append(spill)
            self.files_created += 1
        if self.metrics is not None:
            self.metrics.inc("governor.spill_files", category=category)
        if self.tracer is not None:
            self.tracer.event("spill.create", category=category, label=name)
        return spill

    def spill_rows(
        self, category: str, rows: Iterable[tuple], label: Optional[str] = None
    ) -> SpillFile:
        """Convenience: create a file and write ``rows`` into it."""
        spill = self.create(category, label)
        spill.write_rows(rows)
        return spill

    # ----------------------------------------------------------- accounting

    def _pages(self, row_count: int) -> float:
        return row_count / self.cost_params.rows_per_page

    def _note_write(self, spill: SpillFile, row_count: int) -> None:
        pages = self._pages(row_count)
        with self._lock:
            self.rows_spilled += row_count
            self.pages_spilled += pages
            self.bytes_spilled = sum(f.bytes_written for f in self._files)
            self.categories[spill.category] = (
                self.categories.get(spill.category, 0.0) + pages
            )
        self.meter.charge(pages * self.cost_params.io_page, "spill")
        if self.metrics is not None:
            self.metrics.inc(
                "governor.spill_pages", pages, category=spill.category
            )

    def _note_read(self, spill: SpillFile, row_count: int) -> None:
        with self._lock:
            self.rows_read_back += row_count
        self.meter.charge(
            self._pages(row_count) * self.cost_params.io_page, "spill"
        )

    @property
    def spilled(self) -> bool:
        with self._lock:
            return self.files_created > 0

    def open_files(self) -> list[SpillFile]:
        """Files not yet deleted (the leak-audit surface for tests)."""
        with self._lock:
            return [f for f in self._files if not f.deleted]

    def summary(self) -> dict:
        """Plain-dict spill accounting for reports and traces."""
        with self._lock:
            return {
                "files": self.files_created,
                "rows": self.rows_spilled,
                "pages": self.pages_spilled,
                "bytes": self.bytes_spilled,
                "categories": dict(self.categories),
            }

    # ------------------------------------------------------------ lifecycle

    def close_all(self) -> None:
        """Delete every spill file and the temp directory (idempotent).

        Runs in ``run_plan``'s ``finally`` block, so both the success path
        and every abort path (re-optimization signal, injected fault,
        cancellation, timeout) release their disk footprint here.
        Strictly idempotent: the first call wins, and a second call — the
        driver and server teardown paths may both ask — neither re-deletes
        nor re-emits the ``spill.release`` trace event.
        """
        with self._lock:
            if self.released:
                return
            self.released = True
            files = list(self._files)
            directory = self._dir
            self._dir = None
        # File deletion and the release trace run outside the lock:
        # delete() can flush into _note_write (which takes the
        # non-reentrant lock), and tracer emission under "spill" would
        # invert the declared lock order.
        for spill in files:
            spill.delete()
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
        with self._lock:
            counts = (self.files_created, self.rows_spilled, self.bytes_spilled)
        if self.tracer is not None and counts[0]:
            self.tracer.event(
                "spill.release",
                files=counts[0],
                rows=counts[1],
                bytes=counts[2],
            )
