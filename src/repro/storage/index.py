"""Secondary indexes over tables.

Two index kinds are modeled:

* :class:`HashIndex` — equality lookups, O(1) probe; used by the executor for
  hash-based index nested-loop joins and point predicates.
* :class:`SortedIndex` — a sorted ``(key, rid)`` array probed with binary
  search; supports range scans and provides an ordering (making index scans a
  source of *interesting orders* for the optimizer, as in System R).

Both index kinds ignore NULL keys, matching SQL semantics where ``col = x``
never matches NULL.

``rebuild`` publishes its result as a **single attribute assignment** of a
fully built structure.  The transaction layer rebuilds indexes inside the
commit critical section while snapshot readers may be probing concurrently;
atomic publication means a concurrent probe sees either the old structure or
the new one, never a half-built hybrid (a stale probe can at worst return
rids at or above the reader's snapshot watermark, which the snapshot filter
drops).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.storage.table import Table


class Index:
    """Common interface of both index kinds."""

    #: set by subclasses
    supports_range = False

    def __init__(self, name: str, table: Table, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._col_pos = table.schema.index_of(column)

    def rebuild(self) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> list[int]:
        """Rids of rows whose indexed column equals ``key``."""
        raise NotImplementedError

    @property
    def leaf_pages(self) -> int:
        """Modeled number of leaf pages (for probe costing)."""
        entries_per_page = 256
        return max(1, -(-self.table.row_count // entries_per_page))


class HashIndex(Index):
    """Equality-only index: key -> list of rids."""

    def __init__(self, name: str, table: Table, column: str):
        super().__init__(name, table, column)
        self._buckets: dict[Any, list[int]] = {}
        self.rebuild()

    def rebuild(self) -> None:
        pos = self._col_pos
        buckets: dict[Any, list[int]] = {}
        for rid, row in enumerate(self.table.rows):
            key = row[pos]
            if key is None:
                continue
            buckets.setdefault(key, []).append(rid)
        # Single assignment: concurrent probes see old or new, never partial.
        self._buckets = buckets

    def lookup(self, key: Any) -> list[int]:
        if key is None:
            return []
        return self._buckets.get(key, [])

    def distinct_keys(self) -> int:
        return len(self._buckets)


class SortedIndex(Index):
    """Sorted-array index supporting equality and range probes."""

    supports_range = True

    def __init__(self, name: str, table: Table, column: str):
        super().__init__(name, table, column)
        self._entries: tuple[list[Any], list[int]] = ([], [])
        self.rebuild()

    @property
    def _keys(self) -> list[Any]:
        return self._entries[0]

    @property
    def _rids(self) -> list[int]:
        return self._entries[1]

    def rebuild(self) -> None:
        pos = self._col_pos
        pairs = sorted(
            (row[pos], rid)
            for rid, row in enumerate(self.table.rows)
            if row[pos] is not None
        )
        # Keys and rids are published as one tuple in a single assignment so
        # a concurrent probe never pairs new keys with old rids (or reads a
        # torn keys/rids pair mid-rebuild).
        self._entries = ([k for k, _ in pairs], [r for _, r in pairs])

    def lookup(self, key: Any) -> list[int]:
        if key is None:
            return []
        keys, rids = self._entries
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key)
        return rids[lo:hi]

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield rids with keys in the given (possibly open-ended) range,
        in key order."""
        keys, rids = self._entries
        lo = 0
        hi = len(keys)
        if low is not None:
            lo = bisect_left(keys, low) if low_inclusive else bisect_right(keys, low)
        if high is not None:
            hi = bisect_right(keys, high) if high_inclusive else bisect_left(keys, high)
        for i in range(lo, hi):
            yield rids[i]

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None
