"""Secondary indexes over tables.

Two index kinds are modeled:

* :class:`HashIndex` — equality lookups, O(1) probe; used by the executor for
  hash-based index nested-loop joins and point predicates.
* :class:`SortedIndex` — a sorted ``(key, rid)`` array probed with binary
  search; supports range scans and provides an ordering (making index scans a
  source of *interesting orders* for the optimizer, as in System R).

Both index kinds ignore NULL keys, matching SQL semantics where ``col = x``
never matches NULL.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.storage.table import Table


class Index:
    """Common interface of both index kinds."""

    #: set by subclasses
    supports_range = False

    def __init__(self, name: str, table: Table, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._col_pos = table.schema.index_of(column)

    def rebuild(self) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> list[int]:
        """Rids of rows whose indexed column equals ``key``."""
        raise NotImplementedError

    @property
    def leaf_pages(self) -> int:
        """Modeled number of leaf pages (for probe costing)."""
        entries_per_page = 256
        return max(1, -(-self.table.row_count // entries_per_page))


class HashIndex(Index):
    """Equality-only index: key -> list of rids."""

    def __init__(self, name: str, table: Table, column: str):
        super().__init__(name, table, column)
        self._buckets: dict[Any, list[int]] = {}
        self.rebuild()

    def rebuild(self) -> None:
        self._buckets = {}
        pos = self._col_pos
        for rid, row in enumerate(self.table.rows):
            key = row[pos]
            if key is None:
                continue
            self._buckets.setdefault(key, []).append(rid)

    def lookup(self, key: Any) -> list[int]:
        if key is None:
            return []
        return self._buckets.get(key, [])

    def distinct_keys(self) -> int:
        return len(self._buckets)


class SortedIndex(Index):
    """Sorted-array index supporting equality and range probes."""

    supports_range = True

    def __init__(self, name: str, table: Table, column: str):
        super().__init__(name, table, column)
        self._keys: list[Any] = []
        self._rids: list[int] = []
        self.rebuild()

    def rebuild(self) -> None:
        pos = self._col_pos
        pairs = sorted(
            (row[pos], rid)
            for rid, row in enumerate(self.table.rows)
            if row[pos] is not None
        )
        self._keys = [k for k, _ in pairs]
        self._rids = [r for _, r in pairs]

    def lookup(self, key: Any) -> list[int]:
        if key is None:
            return []
        lo = bisect_left(self._keys, key)
        hi = bisect_right(self._keys, key)
        return self._rids[lo:hi]

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield rids with keys in the given (possibly open-ended) range,
        in key order."""
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = bisect_left(self._keys, low) if low_inclusive else bisect_right(self._keys, low)
        if high is not None:
            hi = bisect_right(self._keys, high) if high_inclusive else bisect_left(self._keys, high)
        for i in range(lo, hi):
            yield self._rids[i]

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None
