"""``python -m repro.resilience`` runs the chaos harness."""

import sys

from repro.resilience.chaos import main

sys.exit(main())
