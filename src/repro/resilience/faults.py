"""Deterministic, seeded fault injection for the executor and storage layer.

A :class:`FaultPlan` is a list of :class:`FaultSpec` records, either built by
hand or generated reproducibly from a seed (:meth:`FaultPlan.seeded` via
:func:`repro.common.rng.make_rng`).  A :class:`FaultInjector` carries one
plan through a statement execution:

* **iterator** — raise :class:`~repro.common.errors.TransientError` on the
  Nth ``next()`` call anywhere in the operator tree (a mid-pipeline crash);
* **stall** — charge extra work units on the Nth ``next()`` call (a slow
  operator, against the deterministic work-unit clock);
* **mem_shrink** — apply memory pressure mid-execution: with a governor
  reservation the statement's reservation is renegotiated down and the
  operators spill; without one, every subsequent sort/hash/temp grant is
  shrunk by the factor (grants below one page raise
  :class:`~repro.common.errors.ResourceExhausted`);
* **stats** — corrupt (scale the row count of) or drop a table's catalog
  statistics before optimization, restored when the statement finishes.

Execution faults trigger on a *global* ``next()``-call counter that spans
all operators and all attempts of one statement, so a fault schedule is a
pure function of the seed and the (deterministic) execution it perturbs.
Each spec fires at most ``times`` times (default once — "transient").

The injector is mounted on :class:`~repro.executor.base.ExecutionContext`
as ``fault_injector`` and armed by ``run_plan`` — the single sanctioned
hook; the ``fault-isolation`` contract rule keeps injection out of every
other module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import TransientError
from repro.common.rng import make_rng

#: Execution-time fault kinds (trigger on the global next()-call counter).
ITERATOR = "iterator"
STALL = "stall"
MEM_SHRINK = "mem_shrink"
#: Statement-level fault kind (applied to the catalog before optimization).
STATS = "stats"

EXEC_KINDS = (ITERATOR, STALL, MEM_SHRINK)
ALL_KINDS = EXEC_KINDS + (STATS,)

#: Payload choices for seeded generation: stall units, shrink factors, and
#: stats row-count scale factors (0.0 means "drop the statistics").
_STALL_UNITS = (250.0, 1000.0, 4000.0)
_SHRINK_FACTORS = (0.5, 0.25, 0.1)
_STATS_SCALES = (100.0, 0.01, 0.0)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``trigger_at`` is the 1-based global ``next()``-call index for execution
    kinds and ignored for ``stats`` faults; ``payload`` is the stall charge
    (work units), the shrink factor, or the stats scale (0.0 = drop);
    ``target_table`` names the table whose statistics a ``stats`` fault
    corrupts; ``times`` caps how often the spec may fire.
    """

    kind: str
    trigger_at: int = 0
    payload: float = 0.0
    target_table: Optional[str] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == STATS and self.target_table is None:
            raise ValueError("stats fault needs a target_table")


@dataclass(frozen=True)
class FiredFault:
    """Log record of one fault firing (the chaos harness audits these
    against the ``fault.injected`` trace events)."""

    kind: str
    at_call: int  #: global next()-call index (0 for stats faults)
    op_kind: str  #: plan-operator KIND, or "catalog" for stats faults
    payload: float
    target_table: Optional[str] = None


@dataclass
class FaultPlan:
    """A reproducible fault schedule."""

    specs: list[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_faults: int = 3,
        kinds: Sequence[str] = EXEC_KINDS,
        tables: Sequence[str] = (),
        max_trigger: int = 2000,
    ) -> "FaultPlan":
        """Generate ``n_faults`` faults deterministically from ``seed``.

        Trigger points are drawn log-uniformly in ``[1, max_trigger]`` so
        early (open-phase) and late (pipelined-phase) calls are both
        exercised.  ``stats`` faults are only drawn when ``tables`` names
        candidates.
        """
        rng = make_rng(seed)
        pool = [k for k in kinds if k != STATS or tables]
        if not pool:
            raise ValueError("no fault kinds to draw from")
        specs = []
        for _ in range(n_faults):
            kind = pool[rng.randrange(len(pool))]
            trigger = int(max_trigger ** rng.random())
            if kind == ITERATOR:
                specs.append(FaultSpec(ITERATOR, trigger_at=trigger))
            elif kind == STALL:
                payload = _STALL_UNITS[rng.randrange(len(_STALL_UNITS))]
                specs.append(FaultSpec(STALL, trigger_at=trigger, payload=payload))
            elif kind == MEM_SHRINK:
                payload = _SHRINK_FACTORS[rng.randrange(len(_SHRINK_FACTORS))]
                specs.append(
                    FaultSpec(MEM_SHRINK, trigger_at=trigger, payload=payload)
                )
            else:  # STATS
                table = tables[rng.randrange(len(tables))]
                payload = _STATS_SCALES[rng.randrange(len(_STATS_SCALES))]
                specs.append(
                    FaultSpec(STATS, payload=payload, target_table=table)
                )
        return cls(specs=specs, seed=seed)

    @property
    def exec_specs(self) -> list[FaultSpec]:
        return [s for s in self.specs if s.kind != STATS]

    @property
    def stats_specs(self) -> list[FaultSpec]:
        return [s for s in self.specs if s.kind == STATS]


class FaultInjector:
    """Carries one :class:`FaultPlan` through a statement execution.

    The injector is armed over a freshly built operator tree by
    ``run_plan`` (it wraps each operator's ``next`` with a counting
    prologue), fires due faults, and records every firing in
    :attr:`fired`.  ``disarm()`` makes all later arming a no-op — the
    guard disarms before running the safe-plan fallback so the fallback is
    guaranteed a clean run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired: list[FiredFault] = []
        self.call_count = 0
        self._active = True
        # Mutable remaining-fire budget per exec spec, trigger-sorted so
        # one pass per call suffices.
        self._pending = sorted(
            ([spec, spec.times] for spec in plan.exec_specs),
            key=lambda entry: entry[0].trigger_at,
        )
        self._saved_stats: Optional[list[tuple[str, object]]] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def active(self) -> bool:
        return self._active

    def disarm(self) -> None:
        """Stop firing (already-armed wrappers become pass-through)."""
        self._active = False

    # -------------------------------------------------------------- arming

    def arm(self, ctx) -> None:
        """Wrap every operator registered in ``ctx`` with fault firing."""
        if not self._active or not self._pending:
            return
        for op in ctx.operators:
            if getattr(op, "_fault_armed", False):
                continue
            op._fault_armed = True
            self._wrap(op, ctx)

    def _wrap(self, op, ctx) -> None:
        inner = op.next

        def next_with_faults():
            self._before_next(op, ctx)
            return inner()

        op.next = next_with_faults

    # -------------------------------------------------------------- firing

    def _before_next(self, op, ctx) -> None:
        if not self._active or not self._pending:
            return
        self.call_count += 1
        count = self.call_count
        fire_now = []
        for entry in self._pending:
            if entry[0].trigger_at > count:
                break
            if entry[1] > 0:
                fire_now.append(entry)
        for entry in fire_now:
            entry[1] -= 1
            if entry[1] <= 0:
                self._pending.remove(entry)
            self._fire(entry[0], op, ctx, count)

    def _fire(self, spec: FaultSpec, op, ctx, count: int) -> None:
        record = FiredFault(
            kind=spec.kind,
            at_call=count,
            op_kind=op.plan.KIND,
            payload=spec.payload,
        )
        self.fired.append(record)
        self._observe(record, ctx.tracer, ctx.metrics)
        if spec.kind == STALL:
            ctx.meter.charge(spec.payload, "fault.stall")
        elif spec.kind == MEM_SHRINK:
            # Structured renegotiation when the memory governor holds a
            # reservation for this statement (the reservation shrinks, and
            # operators degrade by spilling); the blunt context-wide
            # ``mem_shrink`` factor otherwise.
            ctx.apply_memory_pressure(spec.payload)
        elif spec.kind == ITERATOR:
            raise TransientError(
                f"injected transient failure at {op.plan.KIND}"
                f"[op={op.plan.op_id}] next() call {count}"
            )

    @staticmethod
    def _observe(record: FiredFault, tracer, metrics) -> None:
        if tracer is not None:
            tracer.event(
                "fault.injected",
                kind=record.kind,
                at_call=record.at_call,
                op=record.op_kind,
                payload=record.payload,
                table=record.target_table,
            )
        if metrics is not None:
            metrics.inc("resilience.faults_injected", kind=record.kind)

    # ------------------------------------------------------- stats faults

    def corrupt_statistics(self, catalog, tracer=None, metrics=None) -> int:
        """Apply the plan's ``stats`` faults to ``catalog``; returns count.

        Originals are saved for :meth:`restore_statistics` — the guard
        restores them when the statement finishes, so corruption never
        outlives the statement that injected it.
        """
        applied = 0
        if not self._active:
            return applied
        saved = self._saved_stats if self._saved_stats is not None else []
        for spec in self.plan.stats_specs:
            name = spec.target_table
            if not catalog.has_table(name):
                continue
            original = catalog.statistics(name)
            saved.append((name, original))
            if spec.payload <= 0.0 or original is None:
                corrupted = None
            else:
                from dataclasses import replace

                corrupted = replace(
                    original,
                    row_count=max(1, int(original.row_count * spec.payload)),
                )
            catalog.set_statistics(name, corrupted)
            record = FiredFault(
                kind=STATS,
                at_call=0,
                op_kind="catalog",
                payload=spec.payload,
                target_table=name,
            )
            self.fired.append(record)
            self._observe(record, tracer, metrics)
            applied += 1
        self._saved_stats = saved
        return applied

    def restore_statistics(self, catalog) -> None:
        """Undo :meth:`corrupt_statistics` (idempotent)."""
        if not self._saved_stats:
            return
        for name, original in reversed(self._saved_stats):
            if catalog.has_table(name):
                catalog.set_statistics(name, original)
        self._saved_stats = None
