"""Fault injection, execution guards, and safe-plan fallback for POP.

Deterministic chaos engineering for the prototype: seeded fault schedules
(:class:`FaultPlan`), an injector that perturbs executor runtime and catalog
statistics (:class:`FaultInjector`), and the execution guard that keeps the
POP loop live under those perturbations — retry with backoff, a work-unit
deadline, a re-optimization circuit breaker, and a conservative safe-plan
fallback (:class:`ExecutionGuard`, configured by :class:`ResiliencePolicy`).

Run the chaos harness with ``python -m repro.resilience.chaos``.
"""

from repro.core.config import ResiliencePolicy
from repro.resilience.faults import (
    ALL_KINDS,
    EXEC_KINDS,
    ITERATOR,
    MEM_SHRINK,
    STALL,
    STATS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
)
from repro.resilience.guard import FALLBACK, RAISE, RETRY, ExecutionGuard

__all__ = [
    "ALL_KINDS",
    "EXEC_KINDS",
    "ITERATOR",
    "STALL",
    "MEM_SHRINK",
    "STATS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FiredFault",
    "ExecutionGuard",
    "ResiliencePolicy",
    "RETRY",
    "FALLBACK",
    "RAISE",
]
