"""Execution guard: retry/backoff, circuit breaker, and safe-plan fallback.

The guard sits inside :meth:`repro.core.driver.PopDriver.run` and makes the
POP loop survive the faults :mod:`repro.resilience.faults` (or a hostile
environment) throws at it:

* **classification** — every :class:`~repro.common.errors.ReproError`
  escaping an attempt is classified via
  :func:`~repro.common.errors.failure_class`;
* **retry with backoff** — transient/resource failures are retried up to
  ``ResiliencePolicy.max_retries`` times; each retry charges a capped
  exponential backoff to the :class:`~repro.executor.meter.WorkMeter`
  (category ``"backoff"``) so waiting costs work units, same as everything
  else in the deterministic clock;
* **deadlines** — each attempt gets a work-unit deadline
  (``policy.deadline_units``), and the whole statement gets a wall-clock
  deadline (``policy.deadline_seconds``, shared across retries so backoff
  cannot extend it); blowing either raises
  :class:`~repro.common.errors.ExecutionTimeout`, which routes to fallback;
* **circuit breaker** — re-optimization thrash (the optimizer re-choosing
  the same join order ``breaker_same_plan_limit`` times, or the attempt
  count exceeding ``breaker_attempt_limit``) trips the breaker;
* **safe-plan fallback** — once retries are exhausted, the deadline blows,
  or the breaker trips, the driver runs one conservative POP-disabled plan
  (robust join flavors only, no CHECKs, no fault injection, no deadline)
  that is guaranteed to complete.

Every decision is emitted through :mod:`repro.obs` (events ``guard.retry``,
``guard.breaker_trip``, ``guard.fallback``; counters ``resilience.*``).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import RESOURCE, TIMEOUT, TRANSIENT, failure_class
from repro.core.config import ResiliencePolicy
from repro.obs import wall_clock

#: Guard decisions returned by :meth:`ExecutionGuard.on_failure`.
RETRY = "retry"
FALLBACK = "fallback"
RAISE = "raise"

#: Failure classes the guard will retry.
_RETRYABLE = (TRANSIENT, RESOURCE)


class ExecutionGuard:
    """Per-statement guard state for one :meth:`PopDriver.run` call."""

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        meter=None,
        tracer=None,
        metrics=None,
    ):
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.meter = meter
        self.tracer = tracer
        self.metrics = metrics
        self.retries = 0
        self.backoff_units_charged = 0.0
        self.breaker_tripped = False
        self.fallback_reason: Optional[str] = None
        self._join_order_counts: dict[str, int] = {}
        self._injector = None
        self._catalog = None
        self._wall_deadline: Optional[float] = None

    # -------------------------------------------------------- statement scope

    def begin_statement(self, injector, catalog) -> None:
        """Apply statement-level (stats) faults; remember how to undo them."""
        self._injector = injector
        self._catalog = catalog
        if injector is not None and catalog is not None:
            injector.corrupt_statistics(catalog, self.tracer, self.metrics)

    def end_statement(self) -> None:
        """Restore any corrupted statistics (safe to call twice)."""
        if self._injector is not None and self._catalog is not None:
            self._injector.restore_statistics(self._catalog)

    # ------------------------------------------------------------- deadlines

    def deadline_for_attempt(self, meter) -> Optional[float]:
        """Absolute work-unit deadline for the next attempt, or None."""
        if self.policy.deadline_units is None:
            return None
        return meter.snapshot() + self.policy.deadline_units

    def wall_deadline_for_statement(self) -> Optional[float]:
        """Absolute wall-clock deadline for this statement, or None.

        Computed once, on the first attempt, and returned unchanged for
        every retry: the wall deadline bounds the statement's *total*
        latency (the quantity a server client experiences), so backoff
        and re-optimization rounds spend it rather than reset it.  The
        safe-plan fallback deliberately does not consult it — fallback
        must be guaranteed to complete (see :meth:`request_fallback`).
        """
        if self.policy.deadline_seconds is None:
            return None
        if self._wall_deadline is None:
            self._wall_deadline = wall_clock() + self.policy.deadline_seconds
        return self._wall_deadline

    # ---------------------------------------------------------------- breaker

    def on_reoptimize(self, join_order: str, attempt: int) -> bool:
        """Record one re-optimization; returns True if the breaker trips.

        Thrash shows up as the optimizer re-choosing the same join order
        over and over, or as an unbounded attempt count; both indicate the
        feedback loop is not converging and POP should stand down.
        """
        count = self._join_order_counts.get(join_order, 0) + 1
        self._join_order_counts[join_order] = count
        if count >= self.policy.breaker_same_plan_limit:
            self._trip(f"join order {join_order!r} re-chosen {count} times")
            return True
        if attempt + 1 >= self.policy.breaker_attempt_limit:
            self._trip(f"attempt count reached {attempt + 1}")
            return True
        return False

    def _trip(self, why: str) -> None:
        self.breaker_tripped = True
        if self.tracer is not None:
            self.tracer.event("guard.breaker_trip", reason=why)
        if self.metrics is not None:
            self.metrics.inc("resilience.breaker_trips")

    # ---------------------------------------------------------------- failure

    def on_failure(self, exc: BaseException) -> str:
        """Classify ``exc`` and decide: RETRY, FALLBACK, or RAISE.

        A RETRY decision has already charged its backoff to the meter by
        the time this returns, so retry cost is visible in the work-unit
        accounting (category ``"backoff"``).
        """
        cls = failure_class(exc)
        if cls == TIMEOUT:
            if self.metrics is not None:
                self.metrics.inc("resilience.timeouts")
            return self._fallback_or_raise(f"deadline exceeded: {exc}")
        if cls in _RETRYABLE:
            if self.retries < self.policy.max_retries:
                backoff = self.policy.backoff_units(self.retries)
                self.retries += 1
                self.backoff_units_charged += backoff
                if self.meter is not None:
                    self.meter.charge(backoff, "backoff")
                if self.tracer is not None:
                    # Memory failures carry their structured facts into the
                    # classification event, so a starved grant is diagnosable
                    # from trace output alone (category, requested pages,
                    # effective grant).
                    self.tracer.event(
                        "guard.retry",
                        retry=self.retries,
                        failure_class=cls,
                        backoff_units=backoff,
                        error=str(exc),
                        category=getattr(exc, "category", None),
                        requested_pages=getattr(exc, "requested_pages", None),
                        granted_pages=getattr(exc, "granted_pages", None),
                    )
                if self.metrics is not None:
                    self.metrics.inc("resilience.retries", failure_class=cls)
                return RETRY
            return self._fallback_or_raise(
                f"retries exhausted after {self.retries}: {exc}"
            )
        # user / fatal: not the guard's problem.
        return RAISE

    def _fallback_or_raise(self, why: str) -> str:
        if not self.policy.fallback_enabled:
            return RAISE
        self.request_fallback(why)
        return FALLBACK

    def request_fallback(self, why: str) -> None:
        """Record that the statement is falling back to the safe plan."""
        self.fallback_reason = why
        if self._injector is not None:
            # The fallback must be guaranteed to complete: no more faults.
            self._injector.disarm()
        if self.tracer is not None:
            self.tracer.event("guard.fallback", reason=why)
        if self.metrics is not None:
            self.metrics.inc("resilience.fallbacks")
