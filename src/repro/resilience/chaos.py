"""Chaos harness: run the benchmark workloads under seeded fault schedules.

For every workload query and every chaos seed, the harness

1. runs the query once cleanly to establish the oracle result,
2. derives a per-query fault schedule from the seed (stable across
   processes — :func:`zlib.crc32`, not ``hash()``),
3. re-runs the query under fault injection with the execution guard
   engaged, and
4. asserts that the guarded run returns oracle-identical rows, that
   retries stayed within the configured bound, and that every injected
   fault is visible in the :mod:`repro.obs` trace and metrics.

Exit status is non-zero if any query fails any assertion — the CI chaos
smoke job runs this over both workloads with two fixed seeds.

Usage::

    python -m repro.resilience.chaos --workload all --seeds 1 2
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Optional

from repro.common.chaosutil import canonical_rows, query_seed
from repro.common.locking import active_witness
from repro.core.config import PopConfig, ResiliencePolicy
from repro.executor.meter import WorkMeter
from repro.obs import MetricsRegistry, Tracer
from repro.resilience.faults import ALL_KINDS, FaultPlan

__all__ = [  # canonical_rows / query_seed re-exported for compatibility
    "canonical_rows",
    "query_seed",
    "run_query_under_chaos",
    "QueryOutcome",
    "main",
]

#: Faults injected per query run; small enough that the guard's default
#: retry budget can absorb a worst-case all-iterator draw via fallback.
FAULTS_PER_QUERY = 3


@dataclass
class QueryOutcome:
    """One (query, seed) chaos run."""

    workload: str
    query: str
    chaos_seed: int
    ok: bool
    problems: list
    faults_injected: int = 0
    retries: int = 0
    fallback: bool = False
    reoptimizations: int = 0


def _workload_databases(which: str):
    """(label, database, [(name, sql)]) triples, tiny deterministic scales."""
    out = []
    if which in ("tpch", "all"):
        from repro.workloads.tpch.generator import make_tpch_db
        from repro.workloads.tpch.queries import TPCH_QUERIES

        out.append(
            ("tpch", make_tpch_db(scale_factor=0.002, seed=42),
             list(TPCH_QUERIES.items()))
        )
    if which in ("dmv", "all"):
        from repro.workloads.dmv.generator import DmvScale, make_dmv_db
        from repro.workloads.dmv.queries import dmv_queries

        scale = DmvScale(
            owners=1500, cars=2000, accidents=500, violations=700,
            insurance=2000, dealers=120, inspections=1300, registrations=2000,
        )
        out.append(("dmv", make_dmv_db(scale=scale, seed=7), dmv_queries(7)))
    return out


def run_query_under_chaos(
    db,
    workload: str,
    name: str,
    sql: str,
    chaos_seed: int,
    oracle: list,
    policy: Optional[ResiliencePolicy] = None,
) -> QueryOutcome:
    """Execute one query under a seeded fault schedule and audit the run."""
    policy = policy if policy is not None else ResiliencePolicy()
    tables = [t.name for t in db.catalog.tables()]
    plan = FaultPlan.seeded(
        query_seed(chaos_seed, workload, name),
        n_faults=FAULTS_PER_QUERY,
        kinds=ALL_KINDS,
        tables=tables,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    meter = WorkMeter(track_categories=True)
    config = PopConfig(
        resilience=policy,
        strict_analysis=_strict_analysis_requested(),
    )
    problems: list[str] = []
    outcome = QueryOutcome(
        workload=workload, query=name, chaos_seed=chaos_seed,
        ok=False, problems=problems,
    )
    try:
        result = db.execute(
            sql, pop=config, meter=meter, tracer=tracer, metrics=metrics,
            faults=plan,
        )
    except Exception as exc:  # the whole point is that this never happens
        problems.append(f"unhandled {type(exc).__name__}: {exc}")
        return outcome
    report = result.report
    outcome.faults_injected = report.faults_injected
    outcome.retries = report.retries
    outcome.fallback = report.fallback_used
    outcome.reoptimizations = report.reoptimizations
    if canonical_rows(result.rows) != oracle:
        problems.append(
            f"rows diverge from oracle ({len(result.rows)} vs {len(oracle)})"
        )
    if report.retries > policy.max_retries:
        problems.append(
            f"retries {report.retries} exceed bound {policy.max_retries}"
        )
    # Every injected fault must be observable: one trace event each, and a
    # matching counter total.
    events = tracer.events("fault.injected")
    if len(events) != report.faults_injected:
        problems.append(
            f"{report.faults_injected} faults fired but "
            f"{len(events)} fault.injected events traced"
        )
    counted = metrics.total("resilience.faults_injected")
    if int(counted) != report.faults_injected:
        problems.append(
            f"{report.faults_injected} faults fired but metrics counted "
            f"{int(counted)}"
        )
    if report.retries != len(tracer.events("guard.retry")):
        problems.append("guard.retry events disagree with report.retries")
    if report.fallback_used and not tracer.events("guard.fallback"):
        problems.append("fallback used but no guard.fallback event")
    if report.retries and meter.by_category().get("backoff", 0.0) <= 0.0:
        problems.append("retries occurred but no backoff units were charged")
    outcome.ok = not problems
    return outcome


def _strict_analysis_requested() -> bool:
    return os.environ.get("REPRO_STRICT_ANALYSIS", "").strip() not in ("", "0")


def run_cache_stampede(
    chaos_seed: int = 1,
    threads: int = 8,
    statements_per_thread: int = 6,
    verbose: bool = True,
) -> QueryOutcome:
    """Hammer one statement shape from many threads against a cold cache.

    Every thread misses at first (the stampede), so several optimize the
    same shape concurrently and race to install; the cache must serialize
    installs, keep the variant bound, and never hand any thread a plan that
    produces wrong rows.  ``reuse_policy="never"`` keeps per-statement temp
    MVs out of the picture — they are transaction-local and irrelevant to
    the stampede being tested.
    """
    import random
    import threading

    from repro.workloads.dmv import schema as dmv_schema
    from repro.workloads.dmv.generator import DmvScale, make_dmv_db

    db = make_dmv_db(
        scale=DmvScale(
            owners=800, cars=1000, accidents=300, violations=400,
            insurance=1000, dealers=60, inspections=600, registrations=1000,
        ),
        seed=7,
    )
    db.enable_plan_cache()
    config = PopConfig(reuse_policy="never")
    template = (
        "SELECT o.o_id, o.o_name FROM car c, owner o "
        "WHERE c.c_owner_id = o.o_id AND c.c_make = '{make}' "
        "AND c.c_model = '{model}'"
    )

    def statement(rng: random.Random) -> str:
        make_idx = rng.randrange(4)
        return template.format(
            make=dmv_schema.MAKES[make_idx],
            model=dmv_schema.model_name(
                make_idx, rng.randrange(dmv_schema.MODELS_PER_MAKE)
            ),
        )

    # Oracle rows per distinct statement, computed single-threaded first.
    oracle: dict[str, list] = {}
    probe = random.Random(query_seed(chaos_seed, "stampede", "dmv"))
    statements = [
        statement(probe)
        for _ in range(threads * statements_per_thread)
    ]
    for sql in statements:
        if sql not in oracle:
            oracle[sql] = canonical_rows(
                db.execute(sql, pop=PopConfig(plan_cache=False)).rows
            )

    problems: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker(tid: int) -> None:
        mine = statements[
            tid * statements_per_thread: (tid + 1) * statements_per_thread
        ]
        barrier.wait()  # release every thread onto the cold cache at once
        for sql in mine:
            try:
                rows = canonical_rows(db.execute(sql, pop=config).rows)
            except Exception as exc:
                with lock:
                    problems.append(
                        f"thread {tid}: unhandled "
                        f"{type(exc).__name__}: {exc}"
                    )
                return
            if rows != oracle[sql]:
                with lock:
                    problems.append(
                        f"thread {tid}: rows diverge from oracle for {sql!r}"
                    )

    pool = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()

    stats = db.plan_cache.stats
    shapes = len(db.plan_cache.shapes())
    if shapes > 1:
        problems.append(f"one statement shape produced {shapes} cache shapes")
    if len(db.plan_cache) > db.plan_cache.config.variants_per_shape:
        problems.append("variant bound violated under concurrent installs")
    if stats.hits + stats.misses != threads * statements_per_thread:
        problems.append(
            f"lookup accounting off: {stats.hits} hits + {stats.misses} "
            f"misses != {threads * statements_per_thread} statements"
        )
    outcome = QueryOutcome(
        workload="stampede", query="dmv_make_model", chaos_seed=chaos_seed,
        ok=not problems, problems=problems,
    )
    if verbose:
        status = "ok" if outcome.ok else "FAIL"
        print(
            f"  [{status}] stampede/dmv_make_model seed={chaos_seed} "
            f"threads={threads} hits={stats.hits} misses={stats.misses} "
            f"installs={stats.installs}"
        )
        for problem in problems:
            print(f"         - {problem}")
    return outcome


def run_memory_pressure(
    chaos_seed: int = 1,
    threads: int = 6,
    statements_per_thread: int = 2,
    budget_fraction: float = 0.25,
    verbose: bool = True,
) -> QueryOutcome:
    """K concurrent seeded queries against a deliberately undersized budget.

    The governor's budget is set to ``budget_fraction`` of the *largest*
    single plan's estimated working memory, then ``threads`` workers run
    seeded DMV queries through it simultaneously.  The audit demands the
    whole degradation story at once:

    * every query returns oracle-identical rows (spilling changes cost,
      never answers),
    * zero ``ResourceExhausted`` (or any other) escapes — operators
      degrade instead of dying,
    * the reservation high-water mark never exceeds ``budget_pages``
      (checked via the governor's peak gauge), and
    * the pressure was real: spill work is visible in the governor's
      accounting and ``governor.*`` metrics.
    """
    import random
    import threading

    from repro.core.config import MemoryPolicy
    from repro.governor import estimate_plan_memory
    from repro.sql.binder import bind_sql
    from repro.workloads.dmv.generator import DmvScale, make_dmv_db
    from repro.workloads.dmv.queries import dmv_queries

    db = make_dmv_db(
        scale=DmvScale(
            owners=1200, cars=1600, accidents=400, violations=600,
            insurance=1600, dealers=80, inspections=900, registrations=1600,
        ),
        seed=7,
    )
    # The seeded workload queries are highly selective (that is their job —
    # they stress cardinality estimation), so alone they barely touch the
    # budget.  Interleave full-table sorts and joins whose working sets
    # cannot fit a squeezed grant: every thread runs at least one statement
    # that *must* spill to finish.
    heavy = [
        ("heavy_sort_cars",
         "SELECT c.c_id, c.c_make, c.c_weight FROM car c "
         "ORDER BY c.c_weight, c.c_id"),
        ("heavy_sort_owners",
         "SELECT o.o_id, o.o_name, o.o_zip FROM owner o "
         "ORDER BY o.o_zip, o.o_name, o.o_id"),
        ("heavy_join_car_owner",
         "SELECT o.o_name, c.c_model FROM car c, owner o "
         "WHERE c.c_owner_id = o.o_id ORDER BY o.o_name, c.c_model"),
        ("heavy_sort_insurance",
         "SELECT i.i_id, i.i_premium FROM insurance i "
         "ORDER BY i.i_premium, i.i_id"),
    ]
    queries = dmv_queries(chaos_seed)
    rng = random.Random(query_seed(chaos_seed, "memory", "dmv"))
    picks = [
        heavy[rng.randrange(len(heavy))] if slot % 2 == 0
        else queries[rng.randrange(len(queries))]
        for slot in range(threads * statements_per_thread)
    ]
    config = PopConfig(
        reuse_policy="never",
        strict_analysis=_strict_analysis_requested(),
    )

    # Single-query oracles and per-plan memory estimates, ungoverned.
    oracle: dict[str, list] = {}
    estimates = []
    for _name, sql in picks:
        if sql not in oracle:
            oracle[sql] = canonical_rows(db.execute(sql, pop=config).rows)
            estimates.append(
                estimate_plan_memory(
                    db.optimizer.optimize(bind_sql(sql, db.catalog)).plan,
                    db.cost_params,
                )
            )

    policy = MemoryPolicy(
        budget_pages=max(8.0, budget_fraction * max(estimates)),
        min_reservation_pages=4.0,
        min_grant_pages=2.0,
        max_queue_depth=threads * statements_per_thread,
        queue_timeout_seconds=120.0,
    )
    metrics = MetricsRegistry()
    governor = db.enable_memory_governor(policy=policy, metrics=metrics)

    problems: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)
    spilled_flags: list[bool] = []

    def worker(tid: int) -> None:
        mine = picks[
            tid * statements_per_thread: (tid + 1) * statements_per_thread
        ]
        barrier.wait()  # all workers hit the undersized budget at once
        for name, sql in mine:
            try:
                result = db.execute(sql, pop=config, metrics=metrics)
            except Exception as exc:
                with lock:
                    problems.append(
                        f"thread {tid} {name}: escaped "
                        f"{type(exc).__name__}: {exc}"
                    )
                return
            with lock:
                spilled_flags.append(result.report.spilled)
                if canonical_rows(result.rows) != oracle[sql]:
                    problems.append(
                        f"thread {tid} {name}: rows diverge from oracle"
                    )

    pool = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    db.disable_memory_governor()

    snap = governor.snapshot()
    if snap["peak_pages"] > policy.budget_pages + 1e-9:
        problems.append(
            f"budget exceeded: peak {snap['peak_pages']:.1f} pages over "
            f"budget {policy.budget_pages:.1f}"
        )
    if snap["rejected_total"]:
        problems.append(
            f"{snap['rejected_total']} statement(s) shed despite a queue "
            f"sized for the whole run"
        )
    if not any(spilled_flags):
        problems.append(
            "undersized budget produced no spills — pressure not exercised"
        )
    if metrics.total("governor.spill_pages") <= 0.0:
        problems.append("spill work invisible in governor.* metrics")
    witness = active_witness()
    if witness is not None:
        # Cross-check the runtime lock-order witness against the static
        # analyzer: an edge observed here but absent from the static lock
        # graph is a static-analysis false negative.
        from repro.analysis.concurrency import static_lock_graph

        unexpected = witness.edges() - static_lock_graph()
        if unexpected:
            problems.append(
                "witness observed lock edge(s) missing from the static "
                f"lock graph: {sorted(unexpected)}"
            )
        for violation in witness.wait_violations():
            problems.append(
                f"witness saw wait on {violation.waiting_on!r} while "
                f"holding {violation.held}"
            )
    outcome = QueryOutcome(
        workload="memory", query="dmv_concurrent", chaos_seed=chaos_seed,
        ok=not problems, problems=problems,
    )
    if verbose:
        status = "ok" if outcome.ok else "FAIL"
        print(
            f"  [{status}] memory/dmv_concurrent seed={chaos_seed} "
            f"threads={threads} budget={policy.budget_pages:.0f}p "
            f"peak={snap['peak_pages']:.0f}p "
            f"spilled={sum(spilled_flags)}/{len(spilled_flags)} "
            f"renegotiations={snap['renegotiation_total']} "
            f"queued={snap['queued_total']}"
        )
        for problem in problems:
            print(f"         - {problem}")
    return outcome


def run_chaos(
    workload: str = "all",
    seeds: tuple = (1, 2),
    limit: Optional[int] = None,
    verbose: bool = True,
    scenario: str = "all",
) -> list[QueryOutcome]:
    """Run the chaos campaign; returns one outcome per (query, seed).

    ``scenario`` selects the campaign: ``"faults"`` (seeded fault schedules
    plus the cache stampede), ``"memory"`` (concurrent queries against an
    undersized governor budget), or ``"all"``.
    """
    outcomes: list[QueryOutcome] = []
    if scenario == "memory":
        for chaos_seed in seeds:
            outcomes.append(
                run_memory_pressure(chaos_seed=chaos_seed, verbose=verbose)
            )
        return outcomes
    for label, db, queries in _workload_databases(workload):
        if limit is not None:
            queries = queries[:limit]
        oracles = {}
        for name, sql in queries:
            oracles[name] = canonical_rows(db.execute(sql).rows)
        for chaos_seed in seeds:
            for name, sql in queries:
                outcome = run_query_under_chaos(
                    db, label, name, sql, chaos_seed, oracles[name]
                )
                outcomes.append(outcome)
                if verbose:
                    status = "ok" if outcome.ok else "FAIL"
                    extras = (
                        f"faults={outcome.faults_injected} "
                        f"retries={outcome.retries} "
                        f"reopts={outcome.reoptimizations}"
                        + (" fallback" if outcome.fallback else "")
                    )
                    print(
                        f"  [{status}] {label}/{name} seed={chaos_seed} {extras}"
                    )
                    for problem in outcome.problems:
                        print(f"         - {problem}")
    # Concurrency cases: a cache stampede on one statement shape, and the
    # memory-pressure scenario (many statements vs one undersized budget).
    if workload in ("dmv", "all"):
        for chaos_seed in seeds:
            outcomes.append(
                run_cache_stampede(chaos_seed=chaos_seed, verbose=verbose)
            )
        if scenario == "all":
            for chaos_seed in seeds:
                outcomes.append(
                    run_memory_pressure(chaos_seed=chaos_seed, verbose=verbose)
                )
    return outcomes


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Run benchmark workloads under seeded fault injection.",
    )
    parser.add_argument(
        "--workload", choices=("tpch", "dmv", "all"), default="all"
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2],
        help="chaos seeds; each seeds an independent fault campaign",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="run only the first N queries of each workload",
    )
    parser.add_argument(
        "--scenario", choices=("faults", "memory", "all"), default="all",
        help="faults = seeded fault schedules + cache stampede; "
        "memory = concurrent queries vs an undersized governor budget",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    outcomes = run_chaos(
        workload=args.workload,
        seeds=tuple(args.seeds),
        limit=args.limit,
        verbose=not args.quiet,
        scenario=args.scenario,
    )
    failed = [o for o in outcomes if not o.ok]
    total_faults = sum(o.faults_injected for o in outcomes)
    total_retries = sum(o.retries for o in outcomes)
    fallbacks = sum(1 for o in outcomes if o.fallback)
    print(
        f"chaos: {len(outcomes)} runs, {total_faults} faults injected, "
        f"{total_retries} retries, {fallbacks} fallbacks, "
        f"{len(failed)} failures"
    )
    if failed:
        for o in failed:
            print(f"  FAILED {o.workload}/{o.query} seed={o.chaos_seed}:")
            for problem in o.problems:
                print(f"    - {problem}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
